// Determinism audit: double-runs a faulted MemFS workload and asserts the
// two event streams are bit-identical.
//
// Each run builds an 8-node cluster (replication 2), schedules a seeded
// fault schedule (crashes with wipe-on-restart, slow-server episodes, lossy
// links) through the FaultInjector, writes and reads back a batch of files,
// and reports Simulation::EventDigest() — an order-sensitive FNV-1a hash
// over every processed event's (time, sequence) pair. Runs with the same
// seed must produce identical digests; a differing digest means some
// nondeterminism (unseeded randomness, wall-clock time, pointer-keyed
// iteration) leaked into the event stream. A different seed must change the
// digest, proving the digest actually covers the fault schedule.
//
// A SimChecker rides along on every run: lost wakeups, leaked tasks or
// semaphore over-releases in the recovery machinery fail the audit too.
//
// Exit status: 0 on pass, 1 on any mismatch or checker finding. Registered
// as the `determinism_audit` ctest.
#include <cstdio>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "common/units.h"
#include "kvstore/kv_cluster.h"
#include "kvstore/membership.h"
#include "kvstore/migrator.h"
#include "memfs/memfs.h"
#include "meta/client.h"
#include "meta/meta.h"
#include "net/fluid_network.h"
#include "sim/checker.h"
#include "sim/fault.h"
#include "sim/simulation.h"
#include "sim/task.h"

namespace memfs {
namespace {

using units::KiB;
using units::Millis;

constexpr std::uint32_t kNodes = 8;
constexpr std::uint32_t kFiles = 16;

// The append-log arm must reproduce the pre-sharding event stream byte for
// byte: this is the seed-7 batched digest measured before src/meta landed.
// A drift here means the legacy namespace path changed behaviour.
constexpr std::uint64_t kAppendLogSeed7Digest = 0xe7fb33e5d1e88e63ull;

sim::Task WriteFile(sim::Simulation& sim, fs::Vfs& vfs, sim::SimTime start,
                    std::uint32_t node, std::string path, std::uint64_t seed,
                    std::uint8_t& ok) {
  co_await sim.Delay(start);
  fs::VfsContext ctx{node, 0};
  auto created = co_await vfs.Create(ctx, path);
  if (!created.ok()) co_return;
  const Status wrote = co_await vfs.Write(ctx, created.value(),
                                          Bytes::Synthetic(KiB(256), seed));
  const Status closed = co_await vfs.Close(ctx, created.value());
  ok = wrote.ok() && closed.ok();
}

sim::Task ReadFile(fs::Vfs& vfs, std::uint32_t node, std::string path,
                   std::uint64_t seed, std::uint8_t& intact) {
  fs::VfsContext ctx{node, 0};
  auto opened = co_await vfs.Open(ctx, path);
  if (!opened.ok()) co_return;
  Bytes out;
  while (true) {
    auto chunk = co_await vfs.Read(ctx, opened.value(), out.size(), KiB(256));
    if (!chunk.ok()) co_return;
    if (chunk->empty()) break;
    out.Append(*chunk);
  }
  // lint: allow(ignored-status) read handle teardown cannot fail usefully
  co_await vfs.Close(ctx, opened.value());
  intact = out.ContentEquals(Bytes::Synthetic(KiB(256), seed));
}

struct AuditRun {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::uint32_t writes_ok = 0;
  std::uint32_t reads_intact = 0;
  std::uint64_t fault_events = 0;
  bool elastic_ok = true;  // join + drain committed (elastic runs only)
  std::uint32_t pending_intents = 0;   // sharded runs: intents left unrolled
  std::uint64_t listed_entries = 0;    // sharded runs: paged-readdir sweep
  std::string checker_summary;  // empty when the checker is clean
};

// --- Sharded-metadata churn (the src/meta determinism gate) ---------------

sim::Task RunChurnSetup(fs::Vfs& vfs, std::uint8_t& ok) {
  fs::VfsContext ctx{0, 0};
  const Status src = co_await vfs.Mkdir(ctx, "/src");
  const Status dst = co_await vfs.Mkdir(ctx, "/dst");
  ok = src.ok() && dst.ok();
}

// One unit of namespace churn: create + write + seal a file, then (by
// index) a cross-directory rename, a hard link, or an unlink — all racing
// the fault schedule. Failures are part of the audited behaviour.
sim::Task RunChurnOp(sim::Simulation& sim, fs::Vfs& vfs, sim::SimTime start,
                     std::uint32_t node, std::uint32_t index,
                     std::uint8_t& ok) {
  co_await sim.Delay(start);
  fs::VfsContext ctx{node, 0};
  const std::string src = "/src/f" + std::to_string(index);
  auto created = co_await vfs.Create(ctx, src);
  if (!created.ok()) co_return;
  const Status wrote = co_await vfs.Write(ctx, created.value(),
                                          Bytes::Synthetic(KiB(64), 7000 + index));
  const Status closed = co_await vfs.Close(ctx, created.value());
  if (!wrote.ok() || !closed.ok()) co_return;
  Status churned = Status::Ok();
  if (index % 2 == 0) {
    churned = co_await vfs.Rename(ctx, src, "/dst/g" + std::to_string(index));
  } else if (index % 3 == 0) {
    churned = co_await vfs.Link(ctx, src, "/src/l" + std::to_string(index));
  } else if (index % 5 == 0) {
    churned = co_await vfs.Unlink(ctx, src);
  }
  ok = churned.ok();
}

// Rolls surviving rename intents forward once the cluster is healthy again.
sim::Task RunShardedRecovery(meta::Client& client, std::uint32_t& pending) {
  std::uint32_t rounds = 0;
  while (client.pending_intents() > 0 && rounds < 16) {
    // lint: allow(ignored-status) unrecovered intents are retried next round
    (void)co_await client.RecoverPending(0, {});
    ++rounds;
  }
  pending = client.pending_intents();
}

// Paged enumeration sweep: deterministic read traffic over every index blob.
sim::Task RunPagedSweep(fs::Vfs& vfs, std::string dir, std::uint32_t node,
                        std::uint64_t& count) {
  fs::VfsContext ctx{node, 0};
  fs::DirCursor cursor;
  while (true) {
    auto page = co_await vfs.ReadDirPage(ctx, dir, cursor, 16);
    if (!page.ok()) co_return;
    count += page->entries.size();
    if (!page->more) break;
    cursor = page->next;
  }
}

// Faulted namespace churn on the token-range-sharded metadata service:
// creates, cross-directory renames, hard links and unlinks race seeded
// crash / slow / loss windows; recovery then drains every rename intent and
// a paged enumeration sweeps both directories. Crashes keep RAM across the
// restart (process crash) so the bounded recovery loop must always converge
// to zero pending intents — the crash-safety gate rides along with the
// determinism gate.
AuditRun RunShardedOnce(std::uint64_t seed) {
  sim::Simulation sim;
  sim::SimChecker checker(sim);
  net::FairShareNetwork network(sim, net::Das4Ipoib(kNodes));

  kv::KvClientPolicy policy;
  policy.retry.max_attempts = 5;
  policy.op_deadline = Millis(20);

  std::vector<net::NodeId> server_nodes;
  for (std::uint32_t n = 0; n < kNodes; ++n) server_nodes.push_back(n);
  kv::KvCluster storage(sim, network, std::move(server_nodes),
                        kv::KvServerConfig{}, kv::KvOpCostModel{}, nullptr,
                        policy);
  fs::MemFsConfig config;
  config.replication = 2;
  config.metadata = meta::MetadataMode::kSharded;
  fs::MemFs memfs(sim, network, storage, config);

  sim::FaultHooks hooks;
  hooks.set_server_down = [&storage](std::uint32_t server, bool down,
                                     bool wipe) {
    storage.SetServerDown(server, down, wipe);
  };
  hooks.set_server_slowdown = [&storage](std::uint32_t server, double factor) {
    storage.SetServerSlowdown(server, factor);
  };
  hooks.set_link_fault = [&network](std::uint32_t src, std::uint32_t dst,
                                    double loss, sim::SimTime extra) {
    network.SetLinkFault(src, dst, {loss, extra});
  };
  hooks.clear_link_fault = [&network](std::uint32_t src, std::uint32_t dst) {
    network.ClearLinkFault(src, dst);
  };
  sim::FaultInjector injector(sim, std::move(hooks));

  sim::FaultScheduleConfig schedule;
  schedule.seed = seed;
  schedule.servers = kNodes;
  schedule.nodes = kNodes;
  schedule.horizon = Millis(48);
  schedule.crashes = 2;
  schedule.slow_episodes = 1;
  schedule.link_faults = 1;
  schedule.wipe_on_restart = false;  // RAM survives; recovery must converge
  injector.ScheduleAll(sim::GenerateFaultSchedule(schedule));

  std::uint8_t setup_ok = 0;
  // lint: allow(ignored-status) fire-and-forget sim::Task, not a Status
  RunChurnSetup(memfs, setup_ok);
  std::vector<std::uint8_t> churn_ok(kFiles, 0);
  for (std::uint32_t i = 0; i < kFiles; ++i) {
    // lint: allow(ignored-status) fire-and-forget sim::Task, not a Status
    RunChurnOp(sim, memfs, Millis(1) + Millis(3) * i, i % kNodes, i,
               churn_ok[i]);
  }
  sim.Run();

  AuditRun run;
  std::uint32_t pending = ~0u;
  // lint: allow(ignored-status) fire-and-forget sim::Task, not a Status
  RunShardedRecovery(*memfs.meta_client(), pending);
  sim.Run();
  run.pending_intents = pending;

  // lint: allow(ignored-status) fire-and-forget sim::Task, not a Status
  RunPagedSweep(memfs, "/src", 0, run.listed_entries);
  // lint: allow(ignored-status) fire-and-forget sim::Task, not a Status
  RunPagedSweep(memfs, "/dst", 1, run.listed_entries);
  sim.Run();

  run.digest = sim.EventDigest();
  run.events = sim.events_processed();
  run.fault_events = injector.stats().total_events();
  run.writes_ok = setup_ok;
  for (std::uint32_t i = 0; i < kFiles; ++i) run.reads_intact += churn_ok[i];
  checker.Finish();
  run.checker_summary = checker.Summary();
  return run;
}

// Drives one elastic scale-out + scale-in episode mid-traffic: join a 9th
// server, rebalance, then drain server `drain_server` and rebalance again. A
// non-converging sweep budget leaves the transition open; the driver re-runs
// the migrator (resume is idempotent) until it commits.
sim::Task RunElasticDriver(sim::Simulation& sim, kv::Membership& membership,
                           kv::Migrator& migrator, std::uint32_t join_node,
                           std::uint32_t drain_server, std::uint8_t& ok) {
  co_await sim.Delay(Millis(10));
  membership.BeginJoin(join_node);
  std::uint32_t runs = 0;
  while (membership.migrating() && runs < 10) {
    // lint: allow(ignored-status) non-converged runs are resumed below
    (void)co_await migrator.Rebalance();
    ++runs;
  }
  co_await sim.Delay(Millis(8));
  membership.BeginDrain(drain_server);
  runs = 0;
  while (membership.migrating() && runs < 10) {
    // lint: allow(ignored-status) non-converged runs are resumed below
    (void)co_await migrator.Rebalance();
    ++runs;
  }
  ok = !membership.migrating() &&
       membership.state(drain_server) == kv::NodeState::kLeft;
}

AuditRun RunOnce(std::uint64_t seed, bool batching) {
  sim::Simulation sim;
  sim::SimChecker checker(sim);
  net::FairShareNetwork network(sim, net::Das4Ipoib(kNodes));

  kv::KvClientPolicy policy;
  policy.retry.max_attempts = 5;
  policy.op_deadline = Millis(20);

  std::vector<net::NodeId> server_nodes;
  for (std::uint32_t n = 0; n < kNodes; ++n) server_nodes.push_back(n);
  kv::KvCluster storage(sim, network, std::move(server_nodes),
                        kv::KvServerConfig{}, kv::KvOpCostModel{}, nullptr,
                        policy);
  fs::MemFsConfig config;
  config.replication = 2;
  config.io.batching = batching;
  fs::MemFs memfs(sim, network, storage, config);

  sim::FaultHooks hooks;
  hooks.set_server_down = [&storage](std::uint32_t server, bool down,
                                     bool wipe) {
    storage.SetServerDown(server, down, wipe);
  };
  hooks.set_server_slowdown = [&storage](std::uint32_t server, double factor) {
    storage.SetServerSlowdown(server, factor);
  };
  hooks.set_link_fault = [&network](std::uint32_t src, std::uint32_t dst,
                                    double loss, sim::SimTime extra) {
    network.SetLinkFault(src, dst, {loss, extra});
  };
  hooks.clear_link_fault = [&network](std::uint32_t src, std::uint32_t dst) {
    network.ClearLinkFault(src, dst);
  };
  sim::FaultInjector injector(sim, std::move(hooks));

  sim::FaultScheduleConfig schedule;
  schedule.seed = seed;
  schedule.servers = kNodes;
  schedule.nodes = kNodes;
  schedule.horizon = Millis(48);
  schedule.crashes = 2;
  schedule.slow_episodes = 1;
  schedule.link_faults = 1;
  injector.ScheduleAll(sim::GenerateFaultSchedule(schedule));

  std::vector<std::uint8_t> write_ok(kFiles, 0);
  for (std::uint32_t i = 0; i < kFiles; ++i) {
    // lint: allow(ignored-status) fire-and-forget sim::Task, not a Status
    WriteFile(sim, memfs, Millis(3) * i, i % kNodes,
              "/audit_" + std::to_string(i), 9000 + i, write_ok[i]);
  }
  sim.Run();

  std::vector<std::uint8_t> intact(kFiles, 0);
  for (std::uint32_t i = 0; i < kFiles; ++i) {
    // lint: allow(ignored-status) fire-and-forget sim::Task, not a Status
    ReadFile(memfs, i % kNodes, "/audit_" + std::to_string(i), 9000 + i,
             intact[i]);
  }
  sim.Run();

  AuditRun run;
  run.digest = sim.EventDigest();
  run.events = sim.events_processed();
  run.fault_events = injector.stats().total_events();
  for (std::uint32_t i = 0; i < kFiles; ++i) {
    run.writes_ok += write_ok[i];
    run.reads_intact += intact[i];
  }
  checker.Finish();
  run.checker_summary = checker.Summary();
  return run;
}

// Faulted workload with one server join and one server drain mid-traffic:
// the elastic determinism gate. The membership ring swap, the handoff gate's
// wakeup order, and every migrator batch ride the same event stream as the
// foreground I/O, so any nondeterminism in the rebalancing machinery shows
// up as a digest mismatch here.
AuditRun RunElasticOnce(std::uint64_t seed) {
  sim::Simulation sim;
  sim::SimChecker checker(sim);
  // One standby node (index kNodes) hosts the joining server.
  net::FairShareNetwork network(sim, net::Das4Ipoib(kNodes + 1));

  kv::KvClientPolicy policy;
  policy.retry.max_attempts = 5;
  policy.op_deadline = Millis(20);

  std::vector<net::NodeId> server_nodes;
  for (std::uint32_t n = 0; n < kNodes; ++n) server_nodes.push_back(n);
  kv::KvCluster storage(sim, network, std::move(server_nodes),
                        kv::KvServerConfig{}, kv::KvOpCostModel{}, nullptr,
                        policy);
  fs::MemFsConfig config;
  config.replication = 2;
  config.use_ketama = true;
  fs::MemFs memfs(sim, network, storage, config);

  kv::MembershipConfig member_config;
  member_config.replication = config.replication;
  kv::Membership membership(sim, storage, member_config);
  kv::Migrator migrator(sim, membership);
  memfs.AttachMembership(&membership);

  sim::FaultHooks hooks;
  hooks.set_server_down = [&storage](std::uint32_t server, bool down,
                                     bool wipe) {
    storage.SetServerDown(server, down, wipe);
  };
  hooks.set_server_slowdown = [&storage](std::uint32_t server, double factor) {
    storage.SetServerSlowdown(server, factor);
  };
  hooks.set_link_fault = [&network](std::uint32_t src, std::uint32_t dst,
                                    double loss, sim::SimTime extra) {
    network.SetLinkFault(src, dst, {loss, extra});
  };
  hooks.clear_link_fault = [&network](std::uint32_t src, std::uint32_t dst) {
    network.ClearLinkFault(src, dst);
  };
  sim::FaultInjector injector(sim, std::move(hooks));

  sim::FaultScheduleConfig schedule;
  schedule.seed = seed;
  schedule.servers = kNodes;  // faults never target the joining server
  schedule.nodes = kNodes;
  schedule.horizon = Millis(48);
  schedule.crashes = 2;
  schedule.slow_episodes = 1;
  schedule.link_faults = 1;
  injector.ScheduleAll(sim::GenerateFaultSchedule(schedule));

  std::vector<std::uint8_t> write_ok(kFiles, 0);
  for (std::uint32_t i = 0; i < kFiles; ++i) {
    // lint: allow(ignored-status) fire-and-forget sim::Task, not a Status
    WriteFile(sim, memfs, Millis(3) * i, i % kNodes,
              "/audit_" + std::to_string(i), 9000 + i, write_ok[i]);
  }
  std::uint8_t elastic_ok = 0;
  // lint: allow(ignored-status) fire-and-forget sim::Task, not a Status
  RunElasticDriver(sim, membership, migrator, /*join_node=*/kNodes,
                   /*drain_server=*/2, elastic_ok);
  sim.Run();

  std::vector<std::uint8_t> intact(kFiles, 0);
  for (std::uint32_t i = 0; i < kFiles; ++i) {
    // lint: allow(ignored-status) fire-and-forget sim::Task, not a Status
    ReadFile(memfs, i % kNodes, "/audit_" + std::to_string(i), 9000 + i,
             intact[i]);
  }
  sim.Run();

  AuditRun run;
  run.digest = sim.EventDigest();
  run.events = sim.events_processed();
  run.fault_events = injector.stats().total_events();
  run.elastic_ok = elastic_ok != 0;
  for (std::uint32_t i = 0; i < kFiles; ++i) {
    run.writes_ok += write_ok[i];
    run.reads_intact += intact[i];
  }
  checker.Finish();
  run.checker_summary = checker.Summary();
  return run;
}

}  // namespace
}  // namespace memfs

int main() {
  // Batched data path (the default config) and the batching=off passthrough
  // are audited independently: each must be self-deterministic, and seed
  // diversity must show through both.
  const auto first = memfs::RunOnce(7, /*batching=*/true);
  const auto second = memfs::RunOnce(7, /*batching=*/true);
  const auto other = memfs::RunOnce(8, /*batching=*/true);
  const auto plain1 = memfs::RunOnce(7, /*batching=*/false);
  const auto plain2 = memfs::RunOnce(7, /*batching=*/false);
  // Elastic gate: the same faulted workload with a join + drain mid-traffic.
  const auto elastic1 = memfs::RunElasticOnce(7);
  const auto elastic2 = memfs::RunElasticOnce(7);
  const auto elastic3 = memfs::RunElasticOnce(8);
  // Sharded-metadata gate: faulted rename / link / unlink churn plus
  // intent recovery and a paged enumeration sweep.
  const auto sharded1 = memfs::RunShardedOnce(7);
  const auto sharded2 = memfs::RunShardedOnce(7);
  const auto sharded3 = memfs::RunShardedOnce(8);

  std::printf("run 1 (seed 7, batched): digest=%016llx events=%llu "
              "faults=%llu writes_ok=%u reads_intact=%u\n",
              static_cast<unsigned long long>(first.digest),
              static_cast<unsigned long long>(first.events),
              static_cast<unsigned long long>(first.fault_events),
              first.writes_ok, first.reads_intact);
  std::printf("run 2 (seed 7, batched): digest=%016llx events=%llu\n",
              static_cast<unsigned long long>(second.digest),
              static_cast<unsigned long long>(second.events));
  std::printf("run 3 (seed 8, batched): digest=%016llx events=%llu\n",
              static_cast<unsigned long long>(other.digest),
              static_cast<unsigned long long>(other.events));
  std::printf("run 4 (seed 7, unbatched): digest=%016llx events=%llu\n",
              static_cast<unsigned long long>(plain1.digest),
              static_cast<unsigned long long>(plain1.events));
  std::printf("run 5 (seed 7, unbatched): digest=%016llx events=%llu\n",
              static_cast<unsigned long long>(plain2.digest),
              static_cast<unsigned long long>(plain2.events));
  std::printf("run 6 (seed 7, elastic): digest=%016llx events=%llu "
              "faults=%llu writes_ok=%u reads_intact=%u committed=%d\n",
              static_cast<unsigned long long>(elastic1.digest),
              static_cast<unsigned long long>(elastic1.events),
              static_cast<unsigned long long>(elastic1.fault_events),
              elastic1.writes_ok, elastic1.reads_intact,
              elastic1.elastic_ok ? 1 : 0);
  std::printf("run 7 (seed 7, elastic): digest=%016llx events=%llu\n",
              static_cast<unsigned long long>(elastic2.digest),
              static_cast<unsigned long long>(elastic2.events));
  std::printf("run 8 (seed 8, elastic): digest=%016llx events=%llu\n",
              static_cast<unsigned long long>(elastic3.digest),
              static_cast<unsigned long long>(elastic3.events));
  std::printf("run 9 (seed 7, sharded): digest=%016llx events=%llu "
              "faults=%llu ops_ok=%u pending=%u listed=%llu\n",
              static_cast<unsigned long long>(sharded1.digest),
              static_cast<unsigned long long>(sharded1.events),
              static_cast<unsigned long long>(sharded1.fault_events),
              sharded1.reads_intact, sharded1.pending_intents,
              static_cast<unsigned long long>(sharded1.listed_entries));
  std::printf("run 10 (seed 7, sharded): digest=%016llx events=%llu\n",
              static_cast<unsigned long long>(sharded2.digest),
              static_cast<unsigned long long>(sharded2.events));
  std::printf("run 11 (seed 8, sharded): digest=%016llx events=%llu\n",
              static_cast<unsigned long long>(sharded3.digest),
              static_cast<unsigned long long>(sharded3.events));

  bool failed = false;
  if (first.digest != memfs::kAppendLogSeed7Digest) {
    std::fprintf(stderr,
                 "FAIL: append_log digest drifted from the pinned "
                 "pre-sharding baseline %016llx — the legacy namespace path "
                 "changed behaviour\n",
                 static_cast<unsigned long long>(
                     memfs::kAppendLogSeed7Digest));
    failed = true;
  }
  if (first.digest != second.digest) {
    std::fprintf(stderr,
                 "FAIL: same-seed batched runs diverged — nondeterminism in "
                 "the event stream\n");
    failed = true;
  }
  if (plain1.digest != plain2.digest) {
    std::fprintf(stderr,
                 "FAIL: same-seed unbatched runs diverged — nondeterminism "
                 "in the passthrough path\n");
    failed = true;
  }
  if (first.digest == other.digest) {
    std::fprintf(stderr,
                 "FAIL: different fault seeds produced identical digests — "
                 "the digest does not cover the schedule\n");
    failed = true;
  }
  if (elastic1.digest != elastic2.digest) {
    std::fprintf(stderr,
                 "FAIL: same-seed elastic runs diverged — nondeterminism in "
                 "the membership / migration machinery\n");
    failed = true;
  }
  if (elastic1.digest == elastic3.digest) {
    std::fprintf(stderr,
                 "FAIL: different fault seeds produced identical elastic "
                 "digests — the digest does not cover the schedule\n");
    failed = true;
  }
  for (const auto* run : {&elastic1, &elastic2, &elastic3}) {
    if (!run->elastic_ok) {
      std::fprintf(stderr,
                   "FAIL: an elastic run did not commit join + drain (the "
                   "migrator never converged)\n");
      failed = true;
      break;
    }
  }
  if (sharded1.digest != sharded2.digest) {
    std::fprintf(stderr,
                 "FAIL: same-seed sharded runs diverged — nondeterminism in "
                 "the metadata service\n");
    failed = true;
  }
  if (sharded1.digest == sharded3.digest) {
    std::fprintf(stderr,
                 "FAIL: different fault seeds produced identical sharded "
                 "digests — the digest does not cover the schedule\n");
    failed = true;
  }
  for (const auto* run : {&sharded1, &sharded2, &sharded3}) {
    if (run->writes_ok == 0) {
      std::fprintf(stderr, "FAIL: a sharded run could not build /src + /dst\n");
      failed = true;
      break;
    }
  }
  for (const auto* run : {&sharded1, &sharded2, &sharded3}) {
    if (run->pending_intents != 0) {
      std::fprintf(stderr,
                   "FAIL: a sharded run left %u rename intents unrolled — "
                   "crash recovery did not converge\n",
                   run->pending_intents);
      failed = true;
      break;
    }
  }
  for (const auto* run : {&first, &second, &other, &plain1, &plain2,
                          &elastic1, &elastic2, &elastic3, &sharded1,
                          &sharded2, &sharded3}) {
    if (!run->checker_summary.empty()) {
      std::fprintf(stderr, "FAIL: SimChecker findings:\n%s",
                   run->checker_summary.c_str());
      failed = true;
    }
  }
  if (!failed) std::printf("determinism audit OK\n");
  return failed ? 1 : 0;
}
