// Monitor determinism gate: proves continuous monitoring is a pure observer.
//
// The monitor (src/monitor) samples every layer's gauges at fixed sim-time
// windows through the simulation's clock observer hook — it must never
// schedule an event, consume a sequence number, or otherwise perturb the
// run. This audit double-runs the determinism_audit workload (8-node
// faulted MemFS cluster, replication 2, crashes with wipe + slow episodes +
// lossy links) in two configurations:
//
//   bare      — MetricsRegistry wired into every layer, no monitor: the
//               seed's reference digest with monitoring off;
//   monitored — same registry wiring plus Monitor + WatchRegistry + network
//               probes attached, timeline exported.
//
// and asserts:
//   * monitored runs are self-deterministic (same digest AND byte-identical
//     CSV timelines across same-seed runs);
//   * monitored digest == bare digest — the acceptance criterion: sampling
//     with monitoring on is event-stream-identical to monitoring off;
//     (both runs carry the registry: latency recording attaches await
//     continuations to op futures — real events that exist with or without
//     the monitor — so the bare run isolates exactly what the sampler adds,
//     which must be nothing);
//   * a different fault seed changes the digest (the digest is live);
//   * the symmetry auditor sees all 8 kv.mem_bytes instances with real
//     windows, and at least one SLO rule evaluates end-to-end over them;
//   * SimChecker stays clean and the ring drops no windows.
//
// Exit status: 0 on pass, 1 on any mismatch. Registered as the
// `monitor_determinism` ctest.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/units.h"
#include "kvstore/kv_cluster.h"
#include "memfs/memfs.h"
#include "monitor/monitor.h"
#include "monitor/probes.h"
#include "monitor/slo.h"
#include "monitor/symmetry.h"
#include "net/fluid_network.h"
#include "sim/checker.h"
#include "sim/fault.h"
#include "sim/simulation.h"
#include "sim/task.h"

namespace memfs {
namespace {

using units::KiB;
using units::Millis;

constexpr std::uint32_t kNodes = 8;
constexpr std::uint32_t kFiles = 16;

sim::Task WriteFile(sim::Simulation& sim, fs::Vfs& vfs, sim::SimTime start,
                    std::uint32_t node, std::string path, std::uint64_t seed,
                    std::uint8_t& ok) {
  co_await sim.Delay(start);
  fs::VfsContext ctx{node, 0};
  auto created = co_await vfs.Create(ctx, path);
  if (!created.ok()) co_return;
  const Status wrote = co_await vfs.Write(ctx, created.value(),
                                          Bytes::Synthetic(KiB(256), seed));
  const Status closed = co_await vfs.Close(ctx, created.value());
  ok = wrote.ok() && closed.ok();
}

sim::Task ReadFile(fs::Vfs& vfs, std::uint32_t node, std::string path,
                   std::uint8_t& done) {
  fs::VfsContext ctx{node, 0};
  auto opened = co_await vfs.Open(ctx, path);
  if (!opened.ok()) co_return;
  Bytes out;
  while (true) {
    auto chunk = co_await vfs.Read(ctx, opened.value(), out.size(), KiB(256));
    if (!chunk.ok()) co_return;
    if (chunk->empty()) break;
    out.Append(*chunk);
  }
  // lint: allow(ignored-status) read handle teardown cannot fail usefully
  co_await vfs.Close(ctx, opened.value());
  done = 1;
}

struct AuditRun {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::string checker_summary;  // empty when the checker is clean
  // Monitored runs only:
  std::string csv;                      // full timeline export
  std::size_t windows = 0;              // closed windows retained
  std::size_t dropped = 0;              // windows evicted by the ring
  std::size_t balance_instances = 0;    // kv.mem_bytes instances audited
  std::size_t balance_windows = 0;      // windows with >= 2 live instances
  std::size_t slo_rules = 0;            // rules parsed
  std::size_t slo_evaluated = 0;        // windows the skew rule evaluated
};

AuditRun RunOnce(std::uint64_t seed, bool monitored) {
  sim::Simulation sim;
  sim::SimChecker checker(sim);
  net::FairShareNetwork network(sim, net::Das4Ipoib(kNodes));

  // Both configurations carry the registry: gauge writes and latency
  // recording are part of the instrumented data path under audit; the only
  // difference between the runs is the monitor itself.
  auto metrics = std::make_unique<MetricsRegistry>();

  kv::KvClientPolicy policy;
  policy.retry.max_attempts = 5;
  policy.op_deadline = Millis(20);

  std::vector<net::NodeId> server_nodes;
  for (std::uint32_t n = 0; n < kNodes; ++n) server_nodes.push_back(n);
  kv::KvCluster storage(sim, network, std::move(server_nodes),
                        kv::KvServerConfig{}, kv::KvOpCostModel{},
                        metrics.get(), policy);
  fs::MemFsConfig config;
  config.replication = 2;
  config.metrics = metrics.get();
  fs::MemFs memfs(sim, network, storage, config);

  std::unique_ptr<monitor::Monitor> mon;
  if (monitored) {
    monitor::MonitorConfig monitor_config;
    monitor_config.interval = Millis(1);
    mon = std::make_unique<monitor::Monitor>(sim, monitor_config);
    mon->WatchRegistry(metrics.get());
    monitor::AttachNetworkProbes(*mon, network);
  }

  sim::FaultHooks hooks;
  hooks.set_server_down = [&storage](std::uint32_t server, bool down,
                                     bool wipe) {
    storage.SetServerDown(server, down, wipe);
  };
  hooks.set_server_slowdown = [&storage](std::uint32_t server, double factor) {
    storage.SetServerSlowdown(server, factor);
  };
  hooks.set_link_fault = [&network](std::uint32_t src, std::uint32_t dst,
                                    double loss, sim::SimTime extra) {
    network.SetLinkFault(src, dst, {loss, extra});
  };
  hooks.clear_link_fault = [&network](std::uint32_t src, std::uint32_t dst) {
    network.ClearLinkFault(src, dst);
  };
  sim::FaultInjector injector(sim, std::move(hooks));

  sim::FaultScheduleConfig schedule;
  schedule.seed = seed;
  schedule.servers = kNodes;
  schedule.nodes = kNodes;
  schedule.horizon = Millis(48);
  schedule.crashes = 2;
  schedule.slow_episodes = 1;
  schedule.link_faults = 1;
  injector.ScheduleAll(sim::GenerateFaultSchedule(schedule));

  std::vector<std::uint8_t> write_ok(kFiles, 0);
  for (std::uint32_t i = 0; i < kFiles; ++i) {
    // lint: allow(ignored-status) fire-and-forget sim::Task, not a Status
    WriteFile(sim, memfs, Millis(3) * i, i % kNodes,
              "/mon_" + std::to_string(i), 9000 + i, write_ok[i]);
  }
  sim.Run();

  std::vector<std::uint8_t> read_done(kFiles, 0);
  for (std::uint32_t i = 0; i < kFiles; ++i) {
    // lint: allow(ignored-status) fire-and-forget sim::Task, not a Status
    ReadFile(memfs, i % kNodes, "/mon_" + std::to_string(i), read_done[i]);
  }
  sim.Run();

  AuditRun run;
  run.digest = sim.EventDigest();
  run.events = sim.events_processed();
  checker.Finish();
  run.checker_summary = checker.Summary();

  if (monitored) {
    mon->Finish();
    run.windows = mon->windows().size();
    run.dropped = mon->dropped_windows();
    std::ostringstream csv;
    mon->WriteCsv(csv);
    run.csv = csv.str();

    monitor::SymmetryAuditor auditor(*mon);
    const monitor::SymmetryReport report = auditor.Audit("kv.mem_bytes");
    run.balance_instances = report.instance_count;
    run.balance_windows = report.windows.size();

    monitor::SloWatchdog watchdog(*mon);
    (void)watchdog.AddRule("skew(kv.mem_bytes) < 1.25 for 95% of windows");
    (void)watchdog.AddRule(
        "sum(vfs.write.rate) > 0 when sum(io.queued) > 0 for 100% of "
        "windows");
    run.slo_rules = watchdog.rules().size();
    const std::vector<monitor::SloResult> results = watchdog.Evaluate();
    if (!results.empty()) run.slo_evaluated = results[0].windows_evaluated;
  }
  return run;
}

}  // namespace
}  // namespace memfs

int main() {
  const auto bare = memfs::RunOnce(7, /*monitored=*/false);
  const auto mon1 = memfs::RunOnce(7, /*monitored=*/true);
  const auto mon2 = memfs::RunOnce(7, /*monitored=*/true);
  const auto other = memfs::RunOnce(8, /*monitored=*/true);

  std::printf("bare      (seed 7): digest=%016llx events=%llu\n",
              static_cast<unsigned long long>(bare.digest),
              static_cast<unsigned long long>(bare.events));
  std::printf("monitored (seed 7): digest=%016llx events=%llu windows=%zu "
              "dropped=%zu csv_bytes=%zu\n",
              static_cast<unsigned long long>(mon1.digest),
              static_cast<unsigned long long>(mon1.events), mon1.windows,
              mon1.dropped, mon1.csv.size());
  std::printf("monitored (seed 7): digest=%016llx windows=%zu\n",
              static_cast<unsigned long long>(mon2.digest), mon2.windows);
  std::printf("monitored (seed 8): digest=%016llx\n",
              static_cast<unsigned long long>(other.digest));
  std::printf("symmetry: %zu instances of kv.mem_bytes over %zu windows; "
              "SLO: %zu rules, skew rule evaluated %zu windows\n",
              mon1.balance_instances, mon1.balance_windows, mon1.slo_rules,
              mon1.slo_evaluated);

  bool failed = false;
  if (mon1.digest != mon2.digest) {
    std::fprintf(stderr,
                 "FAIL: same-seed monitored runs diverged — nondeterminism "
                 "in the monitored event stream\n");
    failed = true;
  }
  if (mon1.csv != mon2.csv) {
    std::fprintf(stderr,
                 "FAIL: same-seed monitored runs exported different "
                 "timelines\n");
    failed = true;
  }
  if (mon1.digest != bare.digest) {
    std::fprintf(stderr,
                 "FAIL: monitoring changed the event digest — the sampler "
                 "is not a pure observer\n");
    failed = true;
  }
  if (mon1.digest == other.digest) {
    std::fprintf(stderr,
                 "FAIL: different fault seeds produced identical digests — "
                 "the digest does not cover the schedule\n");
    failed = true;
  }
  if (mon1.windows == 0 || mon1.dropped != 0) {
    std::fprintf(stderr, "FAIL: expected retained windows and no ring drops "
                         "(windows=%zu dropped=%zu)\n",
                 mon1.windows, mon1.dropped);
    failed = true;
  }
  if (mon1.balance_instances != memfs::kNodes || mon1.balance_windows == 0) {
    std::fprintf(stderr,
                 "FAIL: symmetry audit saw %zu/%u kv.mem_bytes instances "
                 "over %zu windows\n",
                 mon1.balance_instances, memfs::kNodes, mon1.balance_windows);
    failed = true;
  }
  if (mon1.slo_rules != 2 || mon1.slo_evaluated == 0) {
    std::fprintf(stderr,
                 "FAIL: SLO watchdog did not evaluate end-to-end (rules=%zu "
                 "evaluated=%zu)\n",
                 mon1.slo_rules, mon1.slo_evaluated);
    failed = true;
  }
  for (const auto* run : {&bare, &mon1, &mon2, &other}) {
    if (!run->checker_summary.empty()) {
      std::fprintf(stderr, "FAIL: SimChecker findings:\n%s",
                   run->checker_summary.c_str());
      failed = true;
    }
  }
  if (!failed) std::printf("monitor determinism OK\n");
  return failed ? 1 : 0;
}
