// memfs_trace — trace one simulated workflow end to end and explain its
// makespan.
//
// Runs an MTC workflow (Montage by default) on a simulated MemFS cluster
// with the request tracer attached, then:
//   * writes the full span tree as Chrome trace_event JSON (--out=FILE,
//     loadable in chrome://tracing or ui.perfetto.dev): workflow -> task ->
//     vfs op -> stripe -> kv attempt -> network legs, grouped by node;
//   * extracts the critical path through the trace and prints the per-layer
//     attribution table — how much of the makespan was compute, stripe
//     transfer, kv service, network, retry/backoff, or queueing.
//
//   memfs_trace --nodes=8 --degree=6 --out=montage.json
//   memfs_trace --workload=blast --fragments=128 --csv
//
// Everything is deterministic: same flags -> byte-identical JSON and table.
#include <fstream>
#include <iostream>

#include "common/flags.h"
#include "common/metrics.h"
#include "common/table.h"
#include "common/units.h"
#include "mtc/runner.h"
#include "mtc/scheduler.h"
#include "trace/critical_path.h"
#include "trace/export.h"
#include "trace/trace.h"
#include "workloads/blast.h"
#include "workloads/montage.h"
#include "workloads/testbed.h"

namespace {

using namespace memfs;  // NOLINT: binary-local brevity

constexpr const char* kHelp = R"(memfs_trace — workflow tracing + critical path

  --workload=montage|blast            what to run        [montage]
  --nodes=N                           cluster size       [8]
  --cores=N                           cores per node     [8]
  --fabric=ipoib|gbe|ec2|rdma         network preset     [ipoib]
  --degree=6|12|16                    mosaic size        [6]
  --fragments=N                       BLAST db split     [512]
  --task-scale=N                      divide task count  [64]
  --size-scale=N                      divide file sizes  [16]
  --stripe-kb=N                       stripe size        [512]
  --replication=N                     stripe copies      [1]
  --out=FILE                          Chrome trace JSON  [off]
  --top=N                             span names printed [12]
  --csv                               CSV tables
)";

workloads::Fabric ParseFabric(const std::string& name) {
  if (name == "gbe") return workloads::Fabric::kDas4GbE;
  if (name == "ec2") return workloads::Fabric::kEc2TenGbE;
  if (name == "rdma") return workloads::Fabric::kRdma;
  return workloads::Fabric::kDas4Ipoib;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.GetBool("help")) {
    std::cout << kHelp;
    return 0;
  }

  const std::string workload = flags.GetString("workload", "montage");
  const auto nodes = static_cast<std::uint32_t>(flags.GetUint("nodes", 8));
  const auto cores = static_cast<std::uint32_t>(flags.GetUint("cores", 8));
  const auto fabric = ParseFabric(flags.GetString("fabric", "ipoib"));
  const auto task_scale =
      static_cast<std::uint32_t>(flags.GetUint("task-scale", 64));
  const auto size_scale = flags.GetUint("size-scale", 16);
  const auto degree = static_cast<std::uint32_t>(flags.GetUint("degree", 6));
  const auto fragments =
      static_cast<std::uint32_t>(flags.GetUint("fragments", 512));
  const auto stripe_kb = flags.GetUint("stripe-kb", 512);
  const auto replication =
      static_cast<std::uint32_t>(flags.GetUint("replication", 1));
  const std::string out = flags.GetString("out", "");
  const auto top = static_cast<std::size_t>(flags.GetUint("top", 12));
  const bool csv = flags.GetBool("csv");

  for (const auto& unknown : flags.UnknownFlags()) {
    std::cerr << "unknown flag: --" << unknown << "\n" << kHelp;
    return 2;
  }

  mtc::Workflow workflow;
  if (workload == "blast") {
    workloads::BlastParams params;
    params.fragments = fragments;
    params.task_scale = task_scale;
    params.size_scale = size_scale;
    workflow = workloads::BuildBlast(params);
  } else if (workload == "montage") {
    workloads::MontageParams params;
    params.degree = degree;
    params.task_scale = task_scale;
    params.size_scale = size_scale;
    workflow = workloads::BuildMontage(params);
  } else {
    std::cerr << "unknown workload: " << workload << "\n" << kHelp;
    return 2;
  }

  MetricsRegistry metrics;
  workloads::TestbedConfig config;
  config.nodes = nodes;
  config.fabric = fabric;
  config.memfs.stripe_size = units::KiB(stripe_kb);
  config.memfs.replication = replication;
  config.metrics = &metrics;
  workloads::Testbed bed(workloads::FsKind::kMemFs, config);

  trace::Tracer tracer(bed.simulation());
  mtc::UniformScheduler scheduler;
  mtc::RunnerConfig runner_config;
  runner_config.nodes = nodes;
  runner_config.cores_per_node = cores;
  runner_config.metrics = &metrics;
  runner_config.tracer = &tracer;
  mtc::Runner runner(bed.simulation(), bed.vfs(), scheduler, runner_config);

  const mtc::WorkflowResult result = runner.Run(workflow);
  if (!result.status.ok()) {
    std::cerr << "workflow failed: " << result.status.ToString() << "\n";
    return 1;
  }

  std::cout << "# " << workflow.name << " on " << nodes << " nodes x " << cores
            << " cores, MemFS (task_scale=" << task_scale
            << ", size_scale=" << size_scale << ")\n";
  Table summary({"tasks", "makespan (s)", "read (MB)", "written (MB)",
                 "spans", "open", "dropped"});
  summary.AddRow({Table::Int(workflow.tasks.size()),
                  Table::Num(result.MakespanSeconds(), 3),
                  Table::Num(static_cast<double>(result.bytes_read) / 1e6, 1),
                  Table::Num(static_cast<double>(result.bytes_written) / 1e6, 1),
                  Table::Int(tracer.spans_started()),
                  Table::Int(tracer.open_spans()),
                  Table::Int(tracer.dropped_spans())});
  summary.Print(std::cout, csv);

  if (!out.empty()) {
    std::ofstream file(out, std::ios::binary);
    if (!file) {
      std::cerr << "cannot open " << out << " for writing\n";
      return 1;
    }
    trace::WriteChromeTrace(file, tracer);
    std::cout << "\nChrome trace (" << tracer.finished().size()
              << " spans) written to " << out << "\n";
  }

  const trace::CriticalPath path =
      trace::ExtractCriticalPath(tracer, result.trace_id);
  if (!path.found) {
    std::cerr << "no finished root span for trace " << result.trace_id << "\n";
    return 1;
  }
  std::cout << "\n";
  trace::PrintCriticalPath(std::cout, path, csv, top);

  // Per-server kv activity: how the client spread RPCs over the cluster and
  // where retries / breaker trips / batching concentrated.
  if (kv::KvCluster* storage = bed.storage()) {
    std::cout << "\n# per-server kv activity\n";
    Table servers({"server", "single", "batches", "items", "ops/rpc",
                   "retries", "deadline", "breaker", "srv ops"});
    for (std::uint32_t s = 0; s < storage->server_count(); ++s) {
      const kv::KvServerClientStats& client = storage->server_stats(s);
      const kv::KvServerStats& srv = storage->server(s).stats();
      const std::uint64_t rpcs = client.single_ops + client.batches;
      const std::uint64_t ops = client.single_ops + client.batched_items;
      const std::uint64_t served = srv.sets + srv.adds + srv.gets +
                                   srv.appends + srv.deletes;
      servers.AddRow({Table::Int(s), Table::Int(client.single_ops),
                      Table::Int(client.batches),
                      Table::Int(client.batched_items),
                      Table::Num(rpcs == 0 ? 0.0
                                           : static_cast<double>(ops) /
                                                 static_cast<double>(rpcs),
                                 2),
                      Table::Int(client.retries),
                      Table::Int(client.deadline_exceeded),
                      Table::Int(client.breaker_opens), Table::Int(served)});
    }
    servers.Print(std::cout, csv);
  }
  return 0;
}
