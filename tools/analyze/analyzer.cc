#include "analyze/analyzer.h"

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analyze/parse.h"
#include "lexer.h"

namespace memfs::analyze {

namespace {

using lint::Finding;
using lint::Token;
using lint::TokenizedFile;

constexpr std::size_t kNpos = std::string::npos;
constexpr int kUnreachable = std::numeric_limits<int>::max();

// --- Name sets ------------------------------------------------------------

// Member calls that move lock state. Acquire pairs with Release (Semaphore /
// BoundedPool), EnterWriter with ExitWriter and Lock with Unlock
// (HandoffGate). Lock/Unlock sections are exclusive: the holder shuts out
// every writer of the key.
bool IsAcquireName(const std::string& s) {
  return s == "Acquire" || s == "EnterWriter" || s == "Lock";
}
bool IsReleaseName(const std::string& s) {
  return s == "Release" || s == "ExitWriter" || s == "Unlock";
}

// Statement keywords that look like calls to the token scanner.
const std::set<std::string>& CallKeywords() {
  static const std::set<std::string> kSet = {
      "if",       "for",     "while",    "switch",        "catch",
      "return",   "co_return", "co_await", "co_yield",    "assert",
      "static_assert", "sizeof", "alignof", "decltype",   "defined",
      "throw",    "new",     "delete"};
  return kSet;
}

// Accessor-shaped chain components that never name the lock/container
// itself (`pools_.at(i).Acquire()` — the lock class is `pools_`, not `at`).
const std::set<std::string>& Accessors() {
  static const std::set<std::string> kSet = {
      "at", "get", "front", "back", "begin", "end", "cbegin", "cend",
      "value", "first", "second"};
  return kSet;
}

// Wall-clock blocking primitives that must never be reachable from a
// coroutine: a blocked coroutine stalls the whole single-threaded event
// loop, and none of these route through the simulated clock.
const std::set<std::string>& BlockingNames() {
  static const std::set<std::string> kSet = {
      "sleep",      "usleep",     "nanosleep", "sleep_for", "sleep_until",
      "join",       "wait",       "wait_for",  "wait_until", "lock",
      "try_lock_for"};
  return kSet;
}

// Order-sensitive sinks for the determinism dataflow rule: anything whose
// observable output depends on call order. Digest/byte streams (Append),
// trace emission, simulation event scheduling, RPC/op issue, and monitor
// probe registration. Commutative metric updates (counters, gauges,
// histogram records) are deliberately absent.
const std::set<std::string>& SinkNames() {
  static const std::set<std::string> kSet = {
      "Append",       "StartSpan", "StartSpanOn", "AddEvent", "EndSpan",
      "Annotate",     "Schedule",  "ScheduleAt",  "Resume",   "Set",
      "Get",          "Delete",    "MultiSet",    "MultiGet", "MultiDelete",
      "EnqueueMutation", "Send",   "AddGaugeProbe", "AddRateProbe"};
  return kSet;
}

const std::set<std::string>& SortNames() {
  static const std::set<std::string> kSet = {
      "sort", "stable_sort", "nth_element", "min_element", "max_element"};
  return kSet;
}

// --- Token helpers --------------------------------------------------------

std::size_t MatchForward(const std::vector<Token>& t, std::size_t open,
                         const char* open_text, const char* close_text) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].text == open_text) ++depth;
    if (t[i].text == close_text && --depth == 0) return i;
  }
  return kNpos;
}

std::size_t MatchBackward(const std::vector<Token>& t, std::size_t close,
                          const char* open_text, const char* close_text) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (t[i].text == close_text) ++depth;
    if (t[i].text == open_text && --depth == 0) return i;
  }
  return kNpos;
}

// The identity-carrying component of a member chain, walking backward over
// `expr` in [begin, end): for `slot.workers->...` the tail is `workers`, for
// `pools_.at(node)....` it is `pools_` (accessors are skipped), for
// `membership_->gate()....` it is `gate`. `aliases` resolves local
// references (`auto& pool = flush_pools_->at(node);` maps pool ->
// flush_pools_).
std::string TailOfExpr(const std::vector<Token>& t, std::size_t begin,
                       std::size_t end,
                       const std::map<std::string, std::string>& aliases) {
  std::vector<std::string> comps;  // tail-first
  std::size_t i = end;
  while (i > begin) {
    --i;
    const std::string& text = t[i].text;
    if (text == ")" || text == "]") {
      const std::size_t open =
          MatchBackward(t, i, text == ")" ? "(" : "[", text.c_str());
      if (open == kNpos || open <= begin) break;
      i = open;  // next iteration looks at the token before the opener
      continue;
    }
    if (t[i].kind == Token::Kind::kIdent) {
      comps.push_back(text);
      if (i == begin) break;
      const std::string& sep = t[i - 1].text;
      if (sep == "." || sep == "->" || sep == "::") {
        --i;  // skip the separator; the loop steps to the next component
        continue;
      }
      break;
    }
    break;
  }
  std::string chosen;
  for (const std::string& comp : comps) {
    if (Accessors().count(comp) == 0) {
      chosen = comp;
      break;
    }
  }
  if (chosen.empty()) chosen = comps.empty() ? "<expr>" : comps.back();
  auto alias = aliases.find(chosen);
  if (alias != aliases.end() && alias->second != chosen) {
    return alias->second;
  }
  return chosen;
}

// --- Per-function facts ---------------------------------------------------

struct Site {
  std::string file;
  int line = 0;
  std::string fn;  // display name of the containing function
};

struct HeldLock {
  std::string lock;
  bool exclusive = false;
  int line = 0;  // acquisition line
};

struct AcquireEvent {
  std::string lock;
  int line = 0;
  std::vector<HeldLock> held;  // held set just before this acquisition
};

struct CallRec {
  std::string callee;
  int line = 0;
  bool in_lambda = false;
  std::vector<HeldLock> held;
};

struct FnFacts {
  const TranslationUnit* tu = nullptr;
  const FunctionInfo* fn = nullptr;
  std::map<std::string, std::string> aliases;
  std::vector<AcquireEvent> acquires;
  std::map<std::string, Site> own_acquires;  // lock -> first site
  std::map<std::string, Site> may_acquire;   // transitive (fixpoint)
  std::vector<CallRec> calls;
  // blocking-call facts.
  bool reaches_blocking = false;
  Site blocking_site;
  std::string blocking_name;
  bool blocking_is_direct = false;
  // unordered-sink facts: 0 = calls a sink directly, k = through k calls.
  int sink_depth = kUnreachable;
  std::string sink_name;
  Site sink_site;
};

// --- The analysis ---------------------------------------------------------

class Analysis {
 public:
  explicit Analysis(std::vector<TranslationUnit> tus) : tus_(std::move(tus)) {}

  std::vector<Finding> Run(Stats& stats);

 private:
  void CollectGlobalDecls();
  void ScanFunction(const TranslationUnit& tu, const FunctionInfo& fn,
                    FnFacts& facts);
  void PropagateSummaries();
  void LockGraphRules();
  void BlockingRule();
  void LoopRules(const FnFacts& facts);
  void StatusFlowRule(const FnFacts& facts);
  void AddFinding(const std::string& file, int line, std::string rule,
                  std::string message);

  const std::vector<FnFacts*>& Targets(const std::string& name) {
    static const std::vector<FnFacts*> kNone;
    auto it = symtab_.find(name);
    return it == symtab_.end() ? kNone : it->second;
  }

  // Call resolution used for summary propagation (locks, blocking, sinks).
  // Names with many same-named definitions (Get/Set/Add/...) would connect
  // unrelated subsystems and flood every rule with phantom paths, so
  // summaries only flow through callees that resolve nearly uniquely.
  const std::vector<FnFacts*>& ResolvedTargets(const std::string& name) {
    static const std::vector<FnFacts*> kNone;
    const std::vector<FnFacts*>& all = Targets(name);
    return all.size() <= 2 ? all : kNone;
  }

  std::vector<TranslationUnit> tus_;
  std::vector<FnFacts> fns_;
  std::map<std::string, std::vector<FnFacts*>> symtab_;
  std::map<std::string, const TokenizedFile*> suppressions_;  // by path
  // Global declaration knowledge.
  std::set<std::string> unordered_vars_;
  std::set<std::string> unordered_fns_;
  std::set<std::string> unordered_types_;
  // Pointer-container identity is tracked per TU (keyed by path): these
  // names are usually short locals (`all`, `group`) and a global namespace
  // would produce cross-file collisions.
  std::map<std::string, std::set<std::string>> ptr_elem_vars_;
  std::map<std::string, std::set<std::string>> ptr_keyed_vars_;
  std::set<std::string> status_fns_;
  // Lock-order graph: (from, to) -> witness sites.
  struct Edge {
    Site holder;   // where `from` was acquired
    Site acquire;  // where `to` is acquired while `from` is held
    std::string via;  // callee name when the edge crosses a call, else empty
  };
  std::map<std::pair<std::string, std::string>, Edge> edges_;
  std::vector<Finding> findings_;
  int call_edges_ = 0;
  int call_sites_ = 0;
  int lock_sites_ = 0;
  int unordered_loops_ = 0;
};

void Analysis::AddFinding(const std::string& file, int line, std::string rule,
                          std::string message) {
  bool suppressed = false;
  auto it = suppressions_.find(file);
  if (it != suppressions_.end()) {
    suppressed = lint::IsSuppressed(it->second->suppressions, line, rule);
  }
  findings_.push_back(
      Finding{file, line, std::move(rule), std::move(message), suppressed});
}

// Scans every TU's full token stream for container/alias/Status
// declarations the rules need to resolve names globally.
void Analysis::CollectGlobalDecls() {
  auto declared_name = [](const std::vector<Token>& t, std::size_t after)
      -> std::pair<std::string, bool> {  // (name, is_function)
    std::size_t k = after;
    while (k < t.size() &&
           (t[k].text == "*" || t[k].text == "&" || t[k].text == "const")) {
      ++k;
    }
    if (k >= t.size() || t[k].kind != Token::Kind::kIdent) return {"", false};
    const bool is_fn = k + 1 < t.size() && t[k + 1].text == "(";
    return {t[k].text, is_fn};
  };

  // Pass 1: literal std::unordered_* declarations, pointer containers,
  // unordered type aliases, Status-returning function names.
  for (const TranslationUnit& tu : tus_) {
    const std::vector<Token>& t = tu.lexed.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      const std::string& text = t[i].text;
      if ((text == "unordered_map" || text == "unordered_set" ||
           text == "unordered_multimap" || text == "unordered_multiset") &&
          i + 1 < t.size() && t[i + 1].text == "<") {
        const std::size_t close = MatchForward(t, i + 1, "<", ">");
        if (close == kNpos) continue;
        auto [name, is_fn] = declared_name(t, close + 1);
        if (name.empty()) continue;
        (is_fn ? unordered_fns_ : unordered_vars_).insert(name);
      } else if ((text == "vector" || text == "deque" || text == "array" ||
                  text == "span") &&
                 i + 1 < t.size() && t[i + 1].text == "<") {
        const std::size_t close = MatchForward(t, i + 1, "<", ">");
        if (close == kNpos) continue;
        bool has_ptr = false;
        for (std::size_t k = i + 2; k < close; ++k) {
          if (t[k].text == "*") has_ptr = true;
        }
        if (!has_ptr) continue;
        auto [name, is_fn] = declared_name(t, close + 1);
        if (!name.empty() && !is_fn) ptr_elem_vars_[tu.path].insert(name);
      } else if ((text == "map" || text == "set" || text == "multimap" ||
                  text == "multiset") &&
                 i + 1 < t.size() && t[i + 1].text == "<") {
        const std::size_t close = MatchForward(t, i + 1, "<", ">");
        if (close == kNpos) continue;
        // Pointer in the key position: up to the first depth-1 comma.
        int depth = 0;
        bool key_ptr = false;
        for (std::size_t k = i + 1; k < close; ++k) {
          if (t[k].text == "<") ++depth;
          if (t[k].text == ">") --depth;
          if (t[k].text == "," && depth == 1) break;
          if (t[k].text == "*" && depth == 1) key_ptr = true;
        }
        if (!key_ptr) continue;
        auto [name, is_fn] = declared_name(t, close + 1);
        if (!name.empty() && !is_fn) ptr_keyed_vars_[tu.path].insert(name);
      } else if (text == "using" && i + 3 < t.size() &&
                 t[i + 1].kind == Token::Kind::kIdent &&
                 t[i + 2].text == "=") {
        for (std::size_t k = i + 3; k < t.size() && t[k].text != ";"; ++k) {
          if (t[k].text == "unordered_map" || t[k].text == "unordered_set") {
            unordered_types_.insert(t[i + 1].text);
            break;
          }
        }
      } else if (text == "Status" && i + 2 < t.size() &&
                 t[i + 1].kind == Token::Kind::kIdent &&
                 t[i + 2].text == "(" &&
                 (i == 0 || (t[i - 1].text != "." && t[i - 1].text != "->"))) {
        status_fns_.insert(t[i + 1].text);
      }
    }
  }
  // Pass 2: declarations through unordered type aliases.
  if (unordered_types_.empty()) return;
  for (const TranslationUnit& tu : tus_) {
    const std::vector<Token>& t = tu.lexed.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind != Token::Kind::kIdent ||
          unordered_types_.count(t[i].text) == 0) {
        continue;
      }
      auto [name, is_fn] = declared_name(t, i + 1);
      if (name.empty()) continue;
      (is_fn ? unordered_fns_ : unordered_vars_).insert(name);
    }
  }
}

void Analysis::ScanFunction(const TranslationUnit& tu, const FunctionInfo& fn,
                            FnFacts& facts) {
  const std::vector<Token>& t = tu.lexed.tokens;
  facts.tu = &tu;
  facts.fn = &fn;

  // Local reference aliases: `Type& name = expr;`.
  for (std::size_t i = fn.body_begin + 2; i < fn.body_end; ++i) {
    if (t[i].text != "=" || t[i - 1].kind != Token::Kind::kIdent ||
        t[i - 2].text != "&") {
      continue;
    }
    std::size_t semi = i + 1;
    while (semi < fn.body_end && t[semi].text != ";") ++semi;
    const std::string tail = TailOfExpr(t, i + 1, semi, {});
    if (!tail.empty() && tail != "<expr>") {
      facts.aliases.emplace(t[i - 1].text, tail);
    }
  }

  std::vector<HeldLock> held;
  std::set<std::string> await_flagged;
  std::set<std::string> reacquire_flagged;
  std::set<int> return_flagged;

  for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
    const Token& tok = t[i];
    const bool in_lambda = InLambda(fn, i);

    if (!in_lambda && tok.text == "co_await") {
      for (const HeldLock& h : held) {
        if (h.exclusive && await_flagged.insert(h.lock).second) {
          AddFinding(tu.path, tok.line, "await-held-lock",
                     "co_await while exclusive lock '" + h.lock +
                         "' (acquired line " + std::to_string(h.line) +
                         ") is held; awaited work can depend on the locked "
                         "key — release first or annotate with "
                         "// lint: allow(await-held-lock) <why>");
        }
      }
      continue;
    }
    if (!in_lambda && (tok.text == "return" || tok.text == "co_return")) {
      if (!held.empty() && return_flagged.insert(tok.line).second) {
        std::string held_list;
        for (const HeldLock& h : held) {
          if (!held_list.empty()) held_list += ", ";
          held_list += "'" + h.lock + "' (line " + std::to_string(h.line) +
                       ")";
        }
        AddFinding(tu.path, tok.line, "locked-return",
                   tok.text + " while still holding " + held_list +
                       "; release on every exit path or annotate with "
                       "// lint: allow(locked-return) <why>");
      }
      continue;
    }
    if (tok.kind != Token::Kind::kIdent || i + 1 >= fn.body_end ||
        t[i + 1].text != "(") {
      continue;
    }
    const bool member =
        i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->");
    const std::string& name = tok.text;
    // `Type name(args)` is a variable declaration (e.g. `trace::ScopedSpan
    // wait(ctx, ...)`), not a call to `name`: skip when the preceding token
    // is a plain identifier (that is not a statement keyword) or a closing
    // template angle.
    if (!member && i > fn.body_begin + 1 &&
        ((t[i - 1].kind == Token::Kind::kIdent &&
          CallKeywords().count(t[i - 1].text) == 0) ||
         t[i - 1].text == ">")) {
      continue;
    }

    if (member && (IsAcquireName(name) || IsReleaseName(name))) {
      if (in_lambda) continue;  // deferred code: held state unknowable here
      std::string cls = TailOfExpr(t, fn.body_begin, i - 1, facts.aliases);
      if (name == "EnterWriter" || name == "ExitWriter") cls += "#writer";
      if (name == "Lock" || name == "Unlock") cls += "#lock";
      if (IsAcquireName(name)) {
        ++lock_sites_;
        const bool already =
            std::any_of(held.begin(), held.end(),
                        [&](const HeldLock& h) { return h.lock == cls; });
        if (already && reacquire_flagged.insert(cls).second) {
          AddFinding(tu.path, tok.line, "held-reacquire",
                     "'" + cls + "' is acquired again while already held by "
                     "this function; a second blocking acquisition of the "
                     "same lock class can self-deadlock — restructure or "
                     "annotate with // lint: allow(held-reacquire) <why>");
        }
        facts.acquires.push_back(AcquireEvent{cls, tok.line, held});
        facts.own_acquires.try_emplace(cls,
                                       Site{tu.path, tok.line, fn.display});
        held.push_back(HeldLock{cls, name == "Lock", tok.line});
      } else {
        for (std::size_t h = held.size(); h-- > 0;) {
          if (held[h].lock == cls) {
            held.erase(held.begin() + static_cast<std::ptrdiff_t>(h));
            break;
          }
        }
      }
      continue;
    }
    if (CallKeywords().count(name) > 0) continue;
    ++call_sites_;
    CallRec call;
    call.callee = name;
    call.line = tok.line;
    call.in_lambda = in_lambda;
    if (!in_lambda) call.held = held;
    facts.calls.push_back(std::move(call));
    if (BlockingNames().count(name) > 0 && !facts.reaches_blocking) {
      facts.reaches_blocking = true;
      facts.blocking_is_direct = true;
      facts.blocking_site = Site{tu.path, tok.line, fn.display};
      facts.blocking_name = name;
    }
    if (SinkNames().count(name) > 0 && facts.sink_depth > 0) {
      facts.sink_depth = 0;
      facts.sink_name = name;
      facts.sink_site = Site{tu.path, tok.line, fn.display};
    }
  }
}

// Fixpoint over the call graph: transitive may-acquire sets, blocking-call
// reachability, and sink depth. Deterministic: functions are processed in
// registration order until nothing changes.
void Analysis::PropagateSummaries() {
  for (FnFacts& f : fns_) f.may_acquire = f.own_acquires;
  bool changed = true;
  int rounds = 0;
  while (changed && ++rounds < 64) {
    changed = false;
    for (FnFacts& f : fns_) {
      for (const CallRec& call : f.calls) {
        for (FnFacts* g : ResolvedTargets(call.callee)) {
          if (g == &f) continue;
          for (const auto& [lock, site] : g->may_acquire) {
            if (f.may_acquire.emplace(lock, site).second) changed = true;
          }
          if (g->reaches_blocking && !f.reaches_blocking) {
            f.reaches_blocking = true;
            f.blocking_site = g->blocking_site;
            f.blocking_name = g->blocking_name;
            changed = true;
          }
          if (g->sink_depth != kUnreachable &&
              g->sink_depth + 1 < f.sink_depth) {
            f.sink_depth = g->sink_depth + 1;
            f.sink_name = g->sink_name;
            f.sink_site = g->sink_site;
            changed = true;
          }
        }
      }
    }
  }
}

void Analysis::LockGraphRules() {
  // Intra-function edges: lock B acquired while A held.
  for (const FnFacts& f : fns_) {
    for (const AcquireEvent& ev : f.acquires) {
      for (const HeldLock& h : ev.held) {
        if (h.lock == ev.lock) continue;
        edges_.emplace(
            std::make_pair(h.lock, ev.lock),
            Edge{Site{f.tu->path, h.line, f.fn->display},
                 Site{f.tu->path, ev.line, f.fn->display}, ""});
      }
    }
  }
  // Cross-function edges and cross-call re-acquisitions.
  for (const FnFacts& f : fns_) {
    std::set<std::string> cross_flagged;
    for (const CallRec& call : f.calls) {
      if (call.held.empty()) continue;
      for (FnFacts* g : ResolvedTargets(call.callee)) {
        if (g == &f) continue;
        for (const auto& [lock, site] : g->may_acquire) {
          for (const HeldLock& h : call.held) {
            if (h.lock == lock) {
              if (cross_flagged.insert(lock).second) {
                AddFinding(f.tu->path, call.line, "held-reacquire",
                           "'" + lock + "' (held since line " +
                               std::to_string(h.line) +
                               ") may be acquired again inside the call to '" +
                               call.callee + "' (acquisition at " + site.file +
                               ":" + std::to_string(site.line) + " in " +
                               site.fn + ")");
              }
              continue;
            }
            edges_.emplace(std::make_pair(h.lock, lock),
                           Edge{Site{f.tu->path, h.line, f.fn->display}, site,
                                call.callee});
          }
        }
      }
    }
  }

  // Cycle detection over the acquisition-order graph (Tarjan SCC).
  std::vector<std::string> nodes;
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [key, edge] : edges_) {
    (void)edge;
    adj[key.first].push_back(key.second);
    nodes.push_back(key.first);
    nodes.push_back(key.second);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  std::map<std::string, int> index, low;
  std::vector<std::string> stack;
  std::set<std::string> on_stack;
  std::vector<std::vector<std::string>> sccs;
  int next_index = 0;
  // Iterative Tarjan keyed by node name; adjacency lists are sorted for
  // deterministic SCC output.
  for (auto& [node, neighbors] : adj) {
    (void)node;
    std::sort(neighbors.begin(), neighbors.end());
  }
  std::function<void(const std::string&)> strongconnect =
      [&](const std::string& v) {
        index[v] = low[v] = next_index++;
        stack.push_back(v);
        on_stack.insert(v);
        auto it = adj.find(v);
        if (it != adj.end()) {
          for (const std::string& w : it->second) {
            if (index.find(w) == index.end()) {
              strongconnect(w);
              low[v] = std::min(low[v], low[w]);
            } else if (on_stack.count(w) > 0) {
              low[v] = std::min(low[v], index[w]);
            }
          }
        }
        if (low[v] == index[v]) {
          std::vector<std::string> scc;
          while (true) {
            const std::string w = stack.back();
            stack.pop_back();
            on_stack.erase(w);
            scc.push_back(w);
            if (w == v) break;
          }
          if (scc.size() >= 2) {
            std::sort(scc.begin(), scc.end());
            sccs.push_back(std::move(scc));
          }
        }
      };
  for (const std::string& node : nodes) {
    if (index.find(node) == index.end()) strongconnect(node);
  }
  std::sort(sccs.begin(), sccs.end());

  for (const std::vector<std::string>& scc : sccs) {
    const std::set<std::string> members(scc.begin(), scc.end());
    // Shortest cycle through the smallest member: BFS over SCC-internal
    // edges back to the start.
    const std::string& start = scc.front();
    std::map<std::string, std::string> parent;
    std::vector<std::string> queue = {start};
    std::string closer;  // node with an edge back to start
    for (std::size_t qi = 0; qi < queue.size() && closer.empty(); ++qi) {
      const std::string u = queue[qi];
      auto it = adj.find(u);
      if (it == adj.end()) continue;
      for (const std::string& w : it->second) {
        if (members.count(w) == 0) continue;
        if (w == start) {
          closer = u;
          break;
        }
        if (parent.emplace(w, u).second) queue.push_back(w);
      }
    }
    if (closer.empty()) continue;  // defensive: SCC>=2 always has a cycle
    std::vector<std::string> cycle = {start};
    for (std::string v = closer; v != start; v = parent.at(v)) {
      cycle.insert(cycle.begin() + 1, v);
    }
    cycle.push_back(start);

    std::ostringstream msg;
    msg << "potential deadlock: lock acquisition order cycle ";
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      if (i > 0) msg << " -> ";
      msg << "'" << cycle[i] << "'";
    }
    const Edge* anchor = nullptr;
    for (std::size_t i = 0; i + 1 < cycle.size(); ++i) {
      const Edge& e = edges_.at({cycle[i], cycle[i + 1]});
      if (anchor == nullptr) anchor = &e;
      msg << "; '" << cycle[i + 1] << "' acquired at " << e.acquire.file
          << ":" << e.acquire.line << " (in " << e.acquire.fn << ")";
      if (!e.via.empty()) msg << " via call to '" << e.via << "'";
      msg << " while '" << cycle[i] << "' held (acquired at " << e.holder.file
          << ":" << e.holder.line << " in " << e.holder.fn << ")";
    }
    AddFinding(anchor->acquire.file, anchor->acquire.line, "lock-order",
               msg.str());
  }
}

void Analysis::BlockingRule() {
  for (const FnFacts& f : fns_) {
    if (!f.fn->is_coroutine) continue;
    if (f.blocking_is_direct) {
      AddFinding(f.tu->path, f.blocking_site.line, "blocking-call",
                 "coroutine '" + f.fn->display + "' calls blocking '" +
                     f.blocking_name +
                     "'; a blocked coroutine stalls the whole event loop — "
                     "use the simulated clock / sim primitives");
      continue;
    }
    if (!f.reaches_blocking) continue;
    // Anchor at the first call that leads to the blocking primitive.
    for (const CallRec& call : f.calls) {
      bool leads = false;
      for (FnFacts* g : ResolvedTargets(call.callee)) {
        if (g->reaches_blocking) {
          leads = true;
          break;
        }
      }
      if (!leads) continue;
      AddFinding(f.tu->path, call.line, "blocking-call",
                 "coroutine '" + f.fn->display + "' reaches blocking '" +
                     f.blocking_name + "' (" + f.blocking_site.file + ":" +
                     std::to_string(f.blocking_site.line) +
                     ") through the call to '" + call.callee +
                     "'; a blocked coroutine stalls the whole event loop");
      break;
    }
  }
}

void Analysis::LoopRules(const FnFacts& facts) {
  const TranslationUnit& tu = *facts.tu;
  const FunctionInfo& fn = *facts.fn;
  const std::vector<Token>& t = tu.lexed.tokens;
  static const std::set<std::string> kEmpty;
  auto tu_set =
      [&](const std::map<std::string, std::set<std::string>>& by_path)
      -> const std::set<std::string>& {
    auto it = by_path.find(tu.path);
    return it == by_path.end() ? kEmpty : it->second;
  };
  const std::set<std::string>& ptr_elems = tu_set(ptr_elem_vars_);
  const std::set<std::string>& ptr_keyed = tu_set(ptr_keyed_vars_);

  for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
    const Token& tok = t[i];
    if (tok.kind != Token::Kind::kIdent) continue;

    // Default-comparator sort of a pointer container.
    if (SortNames().count(tok.text) > 0 && i + 1 < fn.body_end &&
        t[i + 1].text == "(") {
      const std::size_t close = MatchForward(t, i + 1, "(", ")");
      if (close == kNpos) continue;
      std::size_t first_comma = close;
      int commas = 0;
      int depth = 0;
      for (std::size_t k = i + 1; k < close; ++k) {
        if (t[k].text == "(" || t[k].text == "<" || t[k].text == "[" ||
            t[k].text == "{") {
          ++depth;
        } else if (t[k].text == ")" || t[k].text == ">" ||
                   t[k].text == "]" || t[k].text == "}") {
          --depth;
        } else if (t[k].text == "," && depth == 1) {
          ++commas;
          if (first_comma == close) first_comma = k;
        }
      }
      const std::string arg_tail =
          TailOfExpr(t, i + 2, first_comma, facts.aliases);
      const int default_comparator_max = tok.text == "nth_element" ? 2 : 1;
      if (ptr_elems.count(arg_tail) > 0 &&
          commas <= default_comparator_max) {
        AddFinding(tu.path, tok.line, "pointer-order",
                   "std::" + tok.text + " over pointer container '" +
                       arg_tail + "' with the default comparator orders by "
                       "address, which varies run to run; sort by a stable "
                       "key instead");
      }
      continue;
    }

    if (tok.text != "for" || i + 1 >= fn.body_end || t[i + 1].text != "(") {
      continue;
    }
    const std::size_t close = MatchForward(t, i + 1, "(", ")");
    if (close == kNpos) continue;
    // Range-for: ':' at parenthesis depth 1.
    std::size_t colon = kNpos;
    int depth = 0;
    for (std::size_t k = i + 1; k < close; ++k) {
      if (t[k].text == "(" || t[k].text == "[" || t[k].text == "{") ++depth;
      if (t[k].text == ")" || t[k].text == "]" || t[k].text == "}") --depth;
      if (t[k].text == ":" && depth == 1) {
        colon = k;
        break;
      }
    }
    if (colon == kNpos) continue;
    const std::string range_tail =
        TailOfExpr(t, colon + 1, close, facts.aliases);
    const bool unordered = unordered_vars_.count(range_tail) > 0 ||
                           unordered_fns_.count(range_tail) > 0;
    const bool is_ptr_keyed = ptr_keyed.count(range_tail) > 0;
    if (!unordered && !is_ptr_keyed) continue;

    // Loop body range.
    std::size_t body_begin = close + 1;
    std::size_t body_end;
    if (body_begin < fn.body_end && t[body_begin].text == "{") {
      body_end = MatchForward(t, body_begin, "{", "}");
      if (body_end == kNpos) continue;
    } else {
      body_end = body_begin;
      while (body_end < fn.body_end && t[body_end].text != ";") ++body_end;
    }

    if (is_ptr_keyed) {
      AddFinding(tu.path, tok.line, "pointer-order",
                 "iteration over pointer-keyed container '" + range_tail +
                     "' visits elements in address order, which varies run "
                     "to run; key by a stable identifier");
      i = body_end;
      continue;
    }

    ++unordered_loops_;
    // Does the loop body reach an order-sensitive sink?
    std::string sink;
    int sink_line = 0;
    for (std::size_t k = body_begin; k <= body_end && k < fn.body_end; ++k) {
      if (t[k].text == "co_await") {
        sink = "co_await (suspension order is part of the event stream)";
        sink_line = t[k].line;
        break;
      }
      if (t[k].kind != Token::Kind::kIdent || k + 1 >= fn.body_end ||
          t[k + 1].text != "(") {
        continue;
      }
      if (SinkNames().count(t[k].text) > 0) {
        sink = "'" + t[k].text + "'";
        sink_line = t[k].line;
        break;
      }
      if (CallKeywords().count(t[k].text) > 0) continue;
      for (FnFacts* g : ResolvedTargets(t[k].text)) {
        if (g->sink_depth <= 1) {
          sink = "'" + g->sink_name + "' (" + g->sink_site.file + ":" +
                 std::to_string(g->sink_site.line) + ") via call to '" +
                 t[k].text + "'";
          sink_line = t[k].line;
          break;
        }
      }
      if (!sink.empty()) break;
    }
    if (!sink.empty()) {
      AddFinding(tu.path, tok.line, "unordered-sink",
                 "iteration over unordered container '" + range_tail +
                     "' reaches order-sensitive sink " + sink + " (line " +
                     std::to_string(sink_line) +
                     "); iterate a sorted copy or annotate with "
                     "// lint: allow(unordered-sink) <why>");
    }
    i = body_end;
  }
}

void Analysis::StatusFlowRule(const FnFacts& facts) {
  const TranslationUnit& tu = *facts.tu;
  const FunctionInfo& fn = *facts.fn;
  const std::vector<Token>& t = tu.lexed.tokens;

  auto check_usage = [&](const std::string& name, std::size_t decl_end,
                         int line) {
    for (std::size_t k = decl_end; k < fn.body_end; ++k) {
      if (t[k].kind == Token::Kind::kIdent && t[k].text == name) return;
    }
    AddFinding(tu.path, line, "status-flow",
               "Status assigned to '" + name + "' is never checked in this "
               "function; test .ok() / propagate it, or annotate with "
               "// lint: allow(status-flow) <why>");
  };

  for (std::size_t i = fn.body_begin + 1; i + 2 < fn.body_end; ++i) {
    const Token& tok = t[i];
    if (tok.kind != Token::Kind::kIdent) continue;
    if (t[i + 1].kind != Token::Kind::kIdent || t[i + 2].text != "=") {
      continue;
    }
    const std::string& var = t[i + 1].text;
    std::size_t semi = i + 3;
    while (semi < fn.body_end && t[semi].text != ";") ++semi;
    if (tok.text == "Status") {
      check_usage(var, semi + 1, t[i + 1].line);
      i = semi;
    } else if (tok.text == "auto") {
      // `auto s = [co_await] <chain>.Fn(...)` with Fn Status-returning.
      std::size_t k = i + 3;
      if (k < semi && t[k].text == "co_await") ++k;
      std::size_t open = k;
      while (open < semi && t[open].text != "(") ++open;
      if (open >= semi || open == k ||
          t[open - 1].kind != Token::Kind::kIdent) {
        continue;
      }
      if (status_fns_.count(t[open - 1].text) == 0) continue;
      check_usage(var, semi + 1, t[i + 1].line);
      i = semi;
    }
  }
}

std::vector<Finding> Analysis::Run(Stats& stats) {
  for (const TranslationUnit& tu : tus_) {
    suppressions_.emplace(tu.path, &tu.lexed);
  }
  CollectGlobalDecls();

  // Parse facts for every function, building the symbol table.
  std::size_t total_fns = 0;
  for (const TranslationUnit& tu : tus_) total_fns += tu.functions.size();
  fns_.reserve(total_fns);
  for (const TranslationUnit& tu : tus_) {
    for (const FunctionInfo& fn : tu.functions) {
      fns_.emplace_back();
      ScanFunction(tu, fn, fns_.back());
    }
  }
  for (FnFacts& f : fns_) {
    symtab_[f.fn->name].push_back(&f);
  }
  for (const FnFacts& f : fns_) {
    for (const CallRec& call : f.calls) {
      call_edges_ += static_cast<int>(Targets(call.callee).size());
    }
  }

  PropagateSummaries();
  LockGraphRules();
  BlockingRule();
  for (const FnFacts& f : fns_) {
    LoopRules(f);
    StatusFlowRule(f);
  }

  // Audit of suppressions naming analyzer rules is lint's job (shared
  // registry in tools/lexer.cc); no duplicate audit here.

  std::sort(findings_.begin(), findings_.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });

  stats.files = static_cast<int>(tus_.size());
  stats.functions = static_cast<int>(fns_.size());
  for (const FnFacts& f : fns_) {
    if (f.fn->is_coroutine) ++stats.coroutines;
  }
  stats.call_sites = call_sites_;
  stats.call_edges = call_edges_;
  stats.lock_sites = lock_sites_;
  std::set<std::string> classes;
  for (const FnFacts& f : fns_) {
    for (const auto& [lock, site] : f.own_acquires) {
      (void)site;
      classes.insert(lock);
    }
  }
  stats.lock_classes = static_cast<int>(classes.size());
  stats.unordered_loops = unordered_loops_;
  for (const Finding& f : findings_) {
    ++(f.suppressed ? stats.suppressed : stats.findings)[f.rule];
  }
  return std::move(findings_);
}

}  // namespace

// --- Public interface -----------------------------------------------------

std::string FormatStats(const Stats& stats) {
  std::ostringstream out;
  out << "analyze: " << stats.files << " TU(s), " << stats.functions
      << " function(s) (" << stats.coroutines << " coroutines), "
      << stats.call_sites << " call site(s), " << stats.call_edges
      << " resolved call edge(s)\n";
  out << "locks: " << stats.lock_classes << " class(es), " << stats.lock_sites
      << " acquisition site(s); unordered-container loops: "
      << stats.unordered_loops << "\n";
  std::set<std::string> rules;
  for (const auto& [rule, n] : stats.findings) {
    (void)n;
    rules.insert(rule);
  }
  for (const auto& [rule, n] : stats.suppressed) {
    (void)n;
    rules.insert(rule);
  }
  for (const std::string& rule : rules) {
    const auto f = stats.findings.find(rule);
    const auto s = stats.suppressed.find(rule);
    out << "rule " << rule << ": "
        << (f == stats.findings.end() ? 0 : f->second) << " finding(s), "
        << (s == stats.suppressed.end() ? 0 : s->second) << " suppressed\n";
  }
  return out.str();
}

void Analyzer::AddSource(std::string path, std::string contents) {
  sources_.push_back(Source{std::move(path), std::move(contents)});
}

bool Analyzer::AddFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  AddSource(path, buffer.str());
  return true;
}

int Analyzer::AddTree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec)) continue;
    const std::string p = it->path().string();
    if (p.size() >= 2 && (p.compare(p.size() - 2, 2, ".h") == 0 ||
                          (p.size() >= 3 &&
                           p.compare(p.size() - 3, 3, ".cc") == 0))) {
      paths.push_back(p);
    }
  }
  std::sort(paths.begin(), paths.end());
  int added = 0;
  for (const std::string& p : paths) {
    if (AddFile(p)) ++added;
  }
  return added;
}

std::vector<lint::Finding> Analyzer::Run(bool include_suppressed) {
  std::vector<TranslationUnit> tus;
  tus.reserve(sources_.size());
  for (const Source& source : sources_) {
    tus.push_back(ParseTu(source.path, source.contents));
  }
  stats_ = Stats{};
  Analysis analysis(std::move(tus));
  std::vector<lint::Finding> findings = analysis.Run(stats_);
  if (!include_suppressed) {
    findings.erase(std::remove_if(findings.begin(), findings.end(),
                                  [](const lint::Finding& f) {
                                    return f.suppressed;
                                  }),
                   findings.end());
  }
  return findings;
}

}  // namespace memfs::analyze
