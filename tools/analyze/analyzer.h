// Semantic cross-TU static analyzer for the MemFS repository.
//
// Where tools/lint.{h,cc} checks one token window at a time, this analyzer
// parses every registered translation unit into functions (tools/analyze/
// parse.h), builds a symbol table and a cross-TU call graph resolved by
// callee name, and runs four rule families over it:
//
//  lock-order          Collects Semaphore/BoundedPool `Acquire` and
//                      HandoffGate `EnterWriter`/`Lock` acquisition sites per
//                      function, propagates held-sets through the call graph,
//                      and reports cycles in the global lock-acquisition-
//                      order graph as potential deadlocks, naming the
//                      acquisition sites on every edge of the cycle.
//
//  coroutine-safety    await-held-lock:  a co_await while an exclusive
//                        HandoffGate::Lock section is open (the awaited work
//                        can depend on the locked key).
//                      held-reacquire:  acquiring a lock class already held
//                        by the same function, directly or through a call
//                        chain (self-deadlock / permit starvation).
//                      locked-return:   a return/co_return while a lock
//                        acquired by this function is still held.
//                      blocking-call:   a wall-clock blocking primitive
//                        (sleep/join/wait...) reachable from a coroutine
//                        body through the call graph.
//
//  determinism         unordered-sink:  a range-for over an
//                        std::unordered_map/set (or a function returning
//                        one) whose loop body reaches an order-sensitive
//                        sink — digest/trace/monitor emission, RPC issue,
//                        event scheduling, or any co_await (suspension
//                        order is part of the event stream).
//                      pointer-order:   sorting a container of pointers with
//                        the default comparator, or iterating a map/set
//                        keyed by pointer — address order varies run to run.
//
//  status-flow         A Status assigned to a local variable that is never
//                      mentioned again in the enclosing function
//                      (assigned-but-never-checked); the scope-aware
//                      complement of lint's token-level ignored-status.
//
// The analyzer shares the lexer and the `lint: allow(<rule>)` suppression
// grammar with the linter (tools/lexer.h); suppressions are checked against
// the finding's anchor line. Output reuses lint::Finding / lint::Format.
//
// The analysis is conservative and heuristic: no preprocessing, overload
// resolution by simple name (a call edge goes to every function with the
// callee's name), and linear held-set tracking inside bodies (no branch
// sensitivity). DESIGN.md documents the false-positive policy.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lint.h"

namespace memfs::analyze {

struct Stats {
  int files = 0;
  int functions = 0;
  int coroutines = 0;
  int call_sites = 0;   // call expressions seen in bodies
  int call_edges = 0;   // (call site, resolved target) pairs
  int lock_classes = 0; // distinct lock identities
  int lock_sites = 0;   // acquisition sites
  int unordered_loops = 0;  // range-fors over unordered containers
  std::map<std::string, int> findings;    // rule -> unsuppressed count
  std::map<std::string, int> suppressed;  // rule -> suppressed count
};

// Multi-line human-readable stats block (the CLI's --stats output).
std::string FormatStats(const Stats& stats);

class Analyzer {
 public:
  // Registers in-memory source (tests).
  void AddSource(std::string path, std::string contents);

  // Reads one file from disk. Returns false when unreadable.
  bool AddFile(const std::string& path);

  // Recursively registers every .h/.cc file under `root` in sorted order.
  // Returns the number of files added.
  int AddTree(const std::string& root);

  // Parses everything, runs every rule, and returns findings sorted by
  // (file, line, rule). Suppressed findings are dropped unless
  // `include_suppressed`. Also fills stats().
  std::vector<lint::Finding> Run(bool include_suppressed = false);

  // Valid after Run().
  const Stats& stats() const { return stats_; }

 private:
  struct Source {
    std::string path;
    std::string contents;
  };
  std::vector<Source> sources_;
  Stats stats_;
};

}  // namespace memfs::analyze
