#include "analyze/parse.h"

#include <set>

namespace memfs::analyze {

namespace {

using lint::Token;

// Names that can never be a function being defined (control statements and
// expression keywords that are also followed by `(...) {`).
const std::set<std::string>& NonFunctionNames() {
  static const std::set<std::string> kNames = {
      "if",     "for",    "while",      "switch",       "catch",
      "return", "sizeof", "alignof",    "decltype",     "noexcept",
      "assert", "static_assert",        "co_await",     "co_return",
      "co_yield", "new",  "delete",     "throw",        "case"};
  return kNames;
}

bool IsQualifier(const std::string& text) {
  return text == "const" || text == "noexcept" || text == "override" ||
         text == "final" || text == "mutable";
}

// Matches a ')' (or '}' / ']') backwards to its opener. Returns the opener
// index, or npos when unbalanced.
std::size_t MatchBackward(const std::vector<Token>& t, std::size_t close,
                          const char* open_text, const char* close_text) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (t[i].text == close_text) ++depth;
    if (t[i].text == open_text && --depth == 0) return i;
  }
  return std::string::npos;
}

// Scans backward from `from` (inclusive) for a ':' at bracket depth zero —
// the start of a constructor initializer list. Stops (and fails) at any
// statement boundary. Returns the index of the ':' or npos.
std::size_t FindInitListColon(const std::vector<Token>& t, std::size_t from) {
  int depth = 0;
  for (std::size_t i = from + 1; i-- > 0;) {
    const std::string& text = t[i].text;
    if (text == ")" || text == "}" || text == "]") {
      ++depth;
      if (text == "}" && depth == 1 && i == from) continue;  // member init {}
      continue;
    }
    if (text == "(" || text == "{" || text == "[") {
      if (--depth < 0) return std::string::npos;  // left the enclosing scope
      continue;
    }
    if (depth > 0) continue;
    if (text == ":") return i;
    if (text == ";" || t[i].kind == Token::Kind::kPreprocessor) {
      return std::string::npos;
    }
  }
  return std::string::npos;
}

// Given the index of a '{' that is not inside a function, decides whether it
// opens a function body; fills `out` (name/display/line/name_token) and
// returns true when it does.
bool DetectFunction(const std::vector<Token>& t, std::size_t brace,
                    FunctionInfo& out) {
  // Step back over trailing qualifiers (`) const noexcept {`).
  std::size_t i = brace;
  while (i > 0) {
    --i;
    if (t[i].kind == Token::Kind::kPreprocessor) continue;
    if (IsQualifier(t[i].text)) continue;
    break;
  }
  if (i == 0 && t[i].text != ")") return false;

  // A constructor initializer list ends in `...) {` too; rewind to the ':'
  // and take the ')' just before it as the parameter list's close.
  if (t[i].text != ")") {
    const std::size_t colon = FindInitListColon(t, i);
    if (colon == std::string::npos || colon == 0) return false;
    i = colon - 1;
    while (i > 0 && t[i].kind == Token::Kind::kPreprocessor) --i;
    if (t[i].text != ")") return false;
  }

  std::size_t open = MatchBackward(t, i, "(", ")");
  if (open == std::string::npos || open == 0) return false;
  std::size_t name = open - 1;
  if (t[name].kind != Token::Kind::kIdent) return false;
  if (NonFunctionNames().count(t[name].text) > 0) return false;

  // `b_(y), a_(x) :` — the candidate is itself an initializer-list entry;
  // walk to the list's ':' and retry on the parameter list before it.
  if (name > 0 && (t[name - 1].text == "," || t[name - 1].text == ":")) {
    const std::size_t colon = FindInitListColon(t, name - 1);
    if (colon == std::string::npos || colon == 0) return false;
    std::size_t close = colon - 1;
    while (close > 0 && t[close].kind == Token::Kind::kPreprocessor) --close;
    if (t[close].text != ")") return false;
    open = MatchBackward(t, close, "(", ")");
    if (open == std::string::npos || open == 0) return false;
    name = open - 1;
    if (t[name].kind != Token::Kind::kIdent) return false;
    if (NonFunctionNames().count(t[name].text) > 0) return false;
  }
  if (name > 0 && t[name - 1].text == "operator") return false;

  out.name = t[name].text;
  out.display = out.name;
  out.line = t[name].line;
  out.name_token = name;
  // Out-of-line `Class::Method`.
  if (name >= 2 && t[name - 1].text == "::" &&
      t[name - 2].kind == Token::Kind::kIdent) {
    out.display = t[name - 2].text + "::" + out.name;
  }
  return true;
}

// Records every lambda body inside [begin, end): a '[' introducer (not a
// subscript, not an attribute) followed by an optional parameter list and an
// optional trailing return type, then '{'.
void FindLambdaBodies(const std::vector<Token>& t, std::size_t begin,
                      std::size_t end, FunctionInfo& fn) {
  for (std::size_t i = begin; i < end; ++i) {
    if (t[i].text != "[") continue;
    if (i + 1 < end && t[i + 1].text == "[") {  // [[attribute]]
      ++i;
      continue;
    }
    if (i > begin) {
      const std::string& prev = t[i - 1].text;
      const bool subscript = t[i - 1].kind == Token::Kind::kIdent ||
                             prev == ")" || prev == "]" ||
                             t[i - 1].kind == Token::Kind::kLiteral;
      if (subscript) continue;
    }
    // Skip the capture list.
    int depth = 0;
    std::size_t j = i;
    for (; j < end; ++j) {
      if (t[j].text == "[") ++depth;
      if (t[j].text == "]" && --depth == 0) break;
    }
    if (j >= end) return;
    ++j;
    // Optional parameter list.
    if (j < end && t[j].text == "(") {
      depth = 0;
      for (; j < end; ++j) {
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")" && --depth == 0) break;
      }
      if (j >= end) return;
      ++j;
    }
    // Optional qualifiers and trailing return type.
    while (j < end && (IsQualifier(t[j].text) || t[j].text == "->" ||
                       t[j].text == "::" || t[j].text == "*" ||
                       t[j].text == "&" ||
                       t[j].kind == Token::Kind::kIdent)) {
      ++j;
    }
    if (j >= end || t[j].text != "{") continue;
    // Body range.
    depth = 0;
    std::size_t close = j;
    for (; close < end; ++close) {
      if (t[close].text == "{") ++depth;
      if (t[close].text == "}" && --depth == 0) break;
    }
    if (close >= end) return;
    fn.lambda_bodies.emplace_back(j, close);
    i = j;  // nested lambdas get their own (inner) entries
  }
}

}  // namespace

bool InLambda(const FunctionInfo& fn, std::size_t i) {
  for (const auto& [begin, end] : fn.lambda_bodies) {
    if (i > begin && i < end) return true;
  }
  return false;
}

TranslationUnit ParseTu(std::string path, const std::string& contents) {
  TranslationUnit tu;
  tu.path = std::move(path);
  tu.lexed = lint::Tokenize(contents);
  const std::vector<Token>& t = tu.lexed.tokens;

  // Class/struct scope names for display-name qualification, keyed by the
  // brace depth at which the block opened.
  struct ClassScope {
    std::string name;
    int depth;
  };
  std::vector<ClassScope> class_stack;

  int depth = 0;
  std::size_t skip_until = 0;  // inside a function body up to this index
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& text = t[i].text;
    if (text == "{") {
      ++depth;
      if (i >= skip_until) {
        FunctionInfo fn;
        if (DetectFunction(t, i, fn)) {
          // Find the matching '}'.
          int d = 0;
          std::size_t close = i;
          for (; close < t.size(); ++close) {
            if (t[close].text == "{") ++d;
            if (t[close].text == "}" && --d == 0) break;
          }
          if (close < t.size()) {
            fn.body_begin = i;
            fn.body_end = close;
            if (fn.display == fn.name && !class_stack.empty()) {
              fn.display = class_stack.back().name + "::" + fn.name;
            }
            for (std::size_t k = i; k < close; ++k) {
              const std::string& kt = t[k].text;
              if (kt == "co_await" || kt == "co_return" || kt == "co_yield") {
                fn.is_coroutine = true;
                break;
              }
            }
            FindLambdaBodies(t, i + 1, close, fn);
            tu.functions.push_back(std::move(fn));
            skip_until = close;
          }
        } else if (i >= 2 && t[i - 1].kind == Token::Kind::kIdent) {
          // `class Foo {` / `struct Foo {` (no base clause).
          if (t[i - 2].text == "class" || t[i - 2].text == "struct") {
            class_stack.push_back(ClassScope{t[i - 1].text, depth});
          }
        } else {
          // `class Foo : public Bar {` — rewind over the base clause.
          const std::size_t colon = i > 0 ? FindInitListColon(t, i - 1)
                                          : std::string::npos;
          if (colon != std::string::npos && colon >= 2 &&
              t[colon - 1].kind == Token::Kind::kIdent &&
              (t[colon - 2].text == "class" || t[colon - 2].text == "struct")) {
            class_stack.push_back(ClassScope{t[colon - 1].text, depth});
          }
        }
      }
      continue;
    }
    if (text == "}") {
      if (!class_stack.empty() && class_stack.back().depth == depth) {
        class_stack.pop_back();
      }
      --depth;
      continue;
    }
  }
  return tu;
}

}  // namespace memfs::analyze
