// Declaration/scope parser for the semantic analyzer.
//
// Turns one lexed translation unit (tools/lexer.h) into a list of function
// definitions with resolved body token ranges. The parser is deliberately
// lightweight — no preprocessing, no template instantiation, no overload
// resolution — but it is scope-accurate where the rules need it:
//
//   * function bodies are found by matching braces, so a rule knows exactly
//     which tokens belong to which function;
//   * constructor initializer lists, class/namespace blocks, gtest TEST()
//     bodies and out-of-line `Class::Method` definitions are recognized;
//   * lambda bodies inside a function are mapped separately so rules can
//     treat deferred code differently from straight-line code;
//   * a function is marked as a coroutine when its body contains
//     co_await / co_return / co_yield.
//
// Everything here is shared by the rule passes in analyzer.cc and by the
// tests.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "lexer.h"

namespace memfs::analyze {

struct FunctionInfo {
  std::string name;     // simple name (the identifier before the parameter list)
  std::string display;  // qualified form when known, e.g. "KvCluster::Get"
  int line = 0;         // line of the name token
  std::size_t name_token = 0;  // token index of the name
  std::size_t body_begin = 0;  // token index of the opening '{'
  std::size_t body_end = 0;    // token index of the matching '}'
  bool is_coroutine = false;
  // Brace ranges (token indices of '{' and '}') of lambda bodies nested in
  // this function, outermost first.
  std::vector<std::pair<std::size_t, std::size_t>> lambda_bodies;
};

struct TranslationUnit {
  std::string path;
  lint::TokenizedFile lexed;
  std::vector<FunctionInfo> functions;
};

// Lexes and parses one source file.
TranslationUnit ParseTu(std::string path, const std::string& contents);

// True when token index `i` of `fn` lies inside one of its lambda bodies
// (exclusive of the enclosing function's own straight-line code).
bool InLambda(const FunctionInfo& fn, std::size_t i);

}  // namespace memfs::analyze
