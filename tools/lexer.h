// Shared C++ lexer and `lint: allow(...)` suppression scanner for the MemFS
// source tools.
//
// Two consumers build on this file:
//
//   * tools/lint.{h,cc}      — the token-level linter (`memfs_lint`),
//   * tools/analyze/         — the semantic cross-TU analyzer
//                              (`memfs_analyze`).
//
// Both see the same token stream and, critically, the same suppression
// grammar: a comment containing `lint: allow(<rule>[, <rule>...])`
// suppresses findings of those rules on the comment's final line and on the
// following line, for *either* tool. The known-rule registry lives here too,
// so the suppression audit (lint's `allow-unknown` rule) accepts analyzer
// rule names and vice versa, and its finding message can name the full valid
// set.
//
// The lexer handles comments, string/char literals, raw strings and
// preprocessor lines (with continuations); it does not preprocess, expand
// macros, or type-check.
#pragma once

#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace memfs::lint {

struct Token {
  enum class Kind { kIdent, kNumber, kLiteral, kPunct, kPreprocessor };
  Kind kind;
  std::string text;
  int line;
};

// line -> rule names suppressed on that line.
using SuppressionMap = std::unordered_map<int, std::set<std::string>>;

struct TokenizedFile {
  std::vector<Token> tokens;
  SuppressionMap suppressions;
  // Every `lint: allow(...)` site as written, one (line, rule) pair per rule
  // named — the raw material for the suppression audit.
  std::vector<std::pair<int, std::string>> suppression_sites;
  bool has_pragma_once = false;
};

bool IsIdentStart(char c);
bool IsIdentChar(char c);

// Lexes `text` into tokens, collecting suppression comments along the way.
TokenizedFile Tokenize(const std::string& text);

// True when `rule` is suppressed on `line`.
bool IsSuppressed(const SuppressionMap& suppressions, int line,
                  const std::string& rule);

// Every rule name either tool implements (lint's token rules plus the
// analyzer's semantic rules). A suppression naming anything else is dead
// weight — the audit flags it.
const std::set<std::string>& KnownRuleNames();

// The registry as a single "a, b, c" string for finding messages.
const std::string& KnownRuleList();

}  // namespace memfs::lint
