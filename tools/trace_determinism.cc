// trace_determinism — proves the tracing subsystem's two determinism claims.
//
//  1. Reproducibility: two identically-configured traced runs produce
//     byte-identical span streams (ids, timestamps, events, annotations) and
//     identical simulation event digests.
//  2. Neutrality: attaching a tracer does not change the simulation. The
//     event digest of a traced run equals the digest of an untraced run of
//     the same workload — recording spans never schedules events or draws
//     randomness, so the observed execution is exactly the unobserved one.
//
// Runs a scaled-down 8-node Montage under MemFS. Exit 0 = both hold;
// registered in ctest as `trace_determinism`.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "mtc/runner.h"
#include "mtc/scheduler.h"
#include "trace/trace.h"
#include "workloads/montage.h"
#include "workloads/testbed.h"

namespace {

using namespace memfs;  // NOLINT: binary-local brevity

struct RunOutcome {
  std::uint64_t digest = 0;
  double makespan = 0.0;
  std::uint64_t spans = 0;
  std::string serialized;  // empty when untraced
};

RunOutcome RunMontage(bool traced) {
  workloads::MontageParams montage;
  montage.degree = 6;
  montage.task_scale = 256;  // ~10 images: seconds of simulated work, not wall
  montage.size_scale = 64;
  const auto workflow = workloads::BuildMontage(montage);

  workloads::TestbedConfig config;
  config.nodes = 8;
  workloads::Testbed bed(workloads::FsKind::kMemFs, config);

  trace::Tracer tracer(bed.simulation());
  mtc::UniformScheduler scheduler;
  mtc::RunnerConfig runner_config;
  runner_config.nodes = config.nodes;
  runner_config.cores_per_node = 4;
  if (traced) runner_config.tracer = &tracer;
  mtc::Runner runner(bed.simulation(), bed.vfs(), scheduler, runner_config);

  const auto result = runner.Run(workflow);
  if (!result.status.ok()) {
    std::cerr << "workflow failed: " << result.status.ToString() << "\n";
    std::exit(1);
  }

  RunOutcome outcome;
  outcome.digest = bed.simulation().EventDigest();
  outcome.makespan = result.MakespanSeconds();
  outcome.spans = tracer.spans_started();
  if (traced) {
    if (tracer.open_spans() != 0) {
      std::cerr << "FAIL: " << tracer.open_spans()
                << " spans still open after the workflow finished\n";
      std::exit(1);
    }
    std::ostringstream os;
    tracer.Serialize(os);
    outcome.serialized = os.str();
  }
  return outcome;
}

}  // namespace

int main() {
  const RunOutcome first = RunMontage(/*traced=*/true);
  const RunOutcome second = RunMontage(/*traced=*/true);
  const RunOutcome bare = RunMontage(/*traced=*/false);

  bool ok = true;
  if (first.serialized != second.serialized) {
    std::cerr << "FAIL: span streams differ across identical traced runs ("
              << first.spans << " vs " << second.spans << " spans)\n";
    ok = false;
  }
  if (first.digest != second.digest) {
    std::cerr << "FAIL: event digests differ across identical traced runs\n";
    ok = false;
  }
  if (first.digest != bare.digest) {
    std::cerr << "FAIL: tracing changed the simulation (traced digest "
              << first.digest << " != untraced digest " << bare.digest
              << ")\n";
    ok = false;
  }
  if (first.makespan != bare.makespan) {
    std::cerr << "FAIL: tracing changed the makespan (" << first.makespan
              << "s vs " << bare.makespan << "s)\n";
    ok = false;
  }
  if (bare.spans != 0) {
    std::cerr << "FAIL: untraced run recorded " << bare.spans << " spans\n";
    ok = false;
  }
  if (!ok) return 1;

  std::cout << "trace determinism OK: " << first.spans
            << " spans byte-identical across runs; digest unchanged by "
               "tracing ("
            << first.digest << ")\n";
  return 0;
}
