// Semantic analyzer CLI: parses the given files/trees into a cross-TU call
// graph and reports lock-order, coroutine-safety, determinism-dataflow and
// status-flow findings, one `file:line: rule: message` per line.
//
//   memfs_analyze [--stats] [--include-suppressed] <file-or-dir>...
//
// Exit status: 0 when no unsuppressed finding, 1 otherwise, 2 on usage
// errors. `ctest -R analyze` runs this over the whole repo.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "analyze/analyzer.h"

int main(int argc, char** argv) {
  bool include_suppressed = false;
  bool stats = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--include-suppressed") {
      include_suppressed = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: memfs_analyze [--stats] [--include-suppressed] "
                   "<file-or-dir>...\n");
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "memfs_analyze: no inputs (try --help)\n");
    return 2;
  }

  memfs::analyze::Analyzer analyzer;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      analyzer.AddTree(path);
    } else if (!analyzer.AddFile(path)) {
      std::fprintf(stderr, "memfs_analyze: cannot read %s\n", path.c_str());
      return 2;
    }
  }

  // Run with suppressed findings included so the summary reports both
  // counts; only unsuppressed ones fail the run.
  const auto findings = analyzer.Run(/*include_suppressed=*/true);
  int violations = 0;
  int suppressed = 0;
  for (const auto& finding : findings) {
    if (finding.suppressed) {
      ++suppressed;
      if (!include_suppressed) continue;
    } else {
      ++violations;
    }
    std::printf("%s\n", memfs::lint::Format(finding).c_str());
  }
  if (stats) {
    std::fputs(memfs::analyze::FormatStats(analyzer.stats()).c_str(), stdout);
  }
  std::fprintf(stderr,
               "memfs_analyze: %d file(s), %d finding(s), %d suppressed\n",
               analyzer.stats().files, violations, suppressed);
  return violations == 0 ? 0 : 1;
}
