// memfs_sim — command-line driver for the simulated MemFS deployment.
//
// Builds a cluster from flags, runs a workload against the chosen file
// system, and prints the results; optionally emits a per-operation latency
// profile (--metrics) and a Chrome trace of the workflow (--trace=FILE,
// viewable in chrome://tracing or ui.perfetto.dev).
//
//   memfs_sim --workload=envelope --nodes=16 --file-kb=1024
//   memfs_sim --workload=montage --fs=amfs --nodes=32 --cores=4
//   memfs_sim --workload=blast --fabric=ec2 --cores=32 --trace=blast.json
//
// Run with --help for the full flag list.
#include <fstream>
#include <iostream>

#include "common/flags.h"
#include "common/metrics.h"
#include "common/table.h"
#include "common/units.h"
#include "mtc/runner.h"
#include "mtc/scheduler.h"
#include "sim/trace.h"
#include "workloads/blast.h"
#include "workloads/envelope.h"
#include "workloads/montage.h"
#include "workloads/testbed.h"

namespace {

using namespace memfs;  // NOLINT: binary-local brevity

constexpr const char* kHelp = R"(memfs_sim — simulated MemFS cluster driver

  --workload=envelope|montage|blast   what to run        [envelope]
  --fs=memfs|amfs|diskpfs             file system        [memfs]
  --fabric=ipoib|gbe|ec2|rdma         network preset     [ipoib]
  --nodes=N                           cluster size       [16]
  --cores=N                           cores per node     [8]

envelope:
  --file-kb=N                         file size in KiB   [1024]
  --files-per-proc=N                  files per process  [8]
  --io-block-kb=N                     call size (0=file) [0]

montage / blast:
  --degree=6|12|16                    mosaic size        [6]
  --fragments=N                       BLAST db split     [512]
  --task-scale=N                      divide task count  [16]
  --size-scale=N                      divide file sizes  [16]

client tuning:
  --stripe-kb=N                       stripe size        [512]
  --io-threads=N                      flush/prefetch pool[8]
  --replication=N                     stripe copies      [1]
  --ketama                            consistent hashing
  --mount-per-process                 Fig. 10b deployment

output:
  --metrics                           per-op latency percentiles
  --trace=FILE                        Chrome trace (workflows only)
  --csv                               CSV tables
)";

workloads::FsKind ParseFs(const std::string& name) {
  if (name == "amfs") return workloads::FsKind::kAmfs;
  if (name == "diskpfs") return workloads::FsKind::kDiskPfs;
  return workloads::FsKind::kMemFs;
}

workloads::Fabric ParseFabric(const std::string& name) {
  if (name == "gbe") return workloads::Fabric::kDas4GbE;
  if (name == "ec2") return workloads::Fabric::kEc2TenGbE;
  if (name == "rdma") return workloads::Fabric::kRdma;
  return workloads::Fabric::kDas4Ipoib;
}

int RunEnvelope(workloads::Testbed& bed, FlagParser& flags, bool csv) {
  workloads::EnvelopeParams params;
  params.nodes = bed.config().nodes;
  params.procs_per_node =
      static_cast<std::uint32_t>(flags.GetUint("cores", 8));
  params.file_size = units::KiB(flags.GetUint("file-kb", 1024));
  params.files_per_proc =
      static_cast<std::uint32_t>(flags.GetUint("files-per-proc", 8));
  params.io_block = units::KiB(flags.GetUint("io-block-kb", 0));

  workloads::EnvelopeBench bench(bed.simulation(), bed.vfs(), params,
                                 bed.amfs());
  const auto write = bench.RunWrite();
  const auto read11 = bench.RunRead11();
  const auto readn1 = bench.RunReadN1();
  const auto create = bench.RunCreate(64);
  const auto open = bench.RunOpen();

  Table table({"metric", "bandwidth (MB/s)", "throughput (op/s)"});
  table.AddRow({"write", Table::Num(write.BandwidthMBps()),
                Table::Num(write.OpsPerSec(), 0)});
  table.AddRow({"1-1 read", Table::Num(read11.BandwidthMBps()),
                Table::Num(read11.OpsPerSec(), 0)});
  table.AddRow({"N-1 read", Table::Num(readn1.BandwidthMBps()),
                Table::Num(readn1.OpsPerSec(), 0)});
  table.AddRow({"create", "-", Table::Num(create.OpsPerSec(), 0)});
  table.AddRow({"open", "-", Table::Num(open.OpsPerSec(), 0)});
  table.Print(std::cout, csv);
  return 0;
}

int RunWorkflow(workloads::Testbed& bed, FlagParser& flags, bool csv,
                const std::string& workload) {
  const auto task_scale =
      static_cast<std::uint32_t>(flags.GetUint("task-scale", 16));
  const auto size_scale = flags.GetUint("size-scale", 16);

  mtc::Workflow workflow;
  if (workload == "montage") {
    workloads::MontageParams params;
    params.degree = static_cast<std::uint32_t>(flags.GetUint("degree", 6));
    params.task_scale = task_scale;
    params.size_scale = size_scale;
    workflow = workloads::BuildMontage(params);
  } else {
    workloads::BlastParams params;
    params.fragments =
        static_cast<std::uint32_t>(flags.GetUint("fragments", 512));
    params.task_scale = task_scale;
    params.size_scale = size_scale;
    workflow = workloads::BuildBlast(params);
  }

  sim::TraceRecorder trace;
  const std::string trace_path = flags.GetString("trace", "");

  mtc::RunnerConfig runner_config;
  runner_config.nodes = bed.config().nodes;
  runner_config.cores_per_node =
      static_cast<std::uint32_t>(flags.GetUint("cores", 8));
  if (!trace_path.empty()) runner_config.trace = &trace;

  mtc::WorkflowResult result;
  if (bed.kind() == workloads::FsKind::kAmfs) {
    mtc::LocalityScheduler scheduler(*bed.amfs());
    mtc::Runner runner(bed.simulation(), bed.vfs(), scheduler, runner_config);
    result = runner.Run(workflow);
  } else {
    mtc::UniformScheduler scheduler;
    mtc::Runner runner(bed.simulation(), bed.vfs(), scheduler, runner_config);
    result = runner.Run(workflow);
  }

  std::cout << workflow.name << ": " << workflow.tasks.size() << " tasks, "
            << Table::Num(
                   static_cast<double>(workflow.TotalOutputBytes()) / 1e6)
            << " MB runtime data\n\n";
  Table table({"stage", "tasks", "span (s)", "per-node MB/s"});
  for (const auto& stage : result.stages) {
    table.AddRow({stage.stage, Table::Int(stage.tasks),
                  Table::Num(stage.SpanSeconds(), 2),
                  Table::Num(stage.PerCoreMBps() *
                             static_cast<double>(runner_config.cores_per_node))});
  }
  table.Print(std::cout, csv);
  std::cout << "\nmakespan: " << Table::Num(result.MakespanSeconds(), 2)
            << " s, status: "
            << (result.status.ok() ? "ok" : result.status.ToString()) << "\n";

  if (!trace_path.empty()) {
    for (std::uint32_t n = 0; n < bed.config().nodes; ++n) {
      trace.NameProcess(n, "node " + std::to_string(n));
    }
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "cannot write trace to " << trace_path << "\n";
      return 1;
    }
    trace.WriteJson(out);
    std::cout << "trace: " << trace.spans().size() << " task spans -> "
              << trace_path << "\n";
  }
  return result.status.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.GetBool("help")) {
    std::cout << kHelp;
    return 0;
  }
  const bool csv = flags.GetBool("csv");
  const std::string workload = flags.GetString("workload", "envelope");

  MetricsRegistry metrics;
  workloads::TestbedConfig config;
  config.nodes = static_cast<std::uint32_t>(flags.GetUint("nodes", 16));
  config.fabric = ParseFabric(flags.GetString("fabric", "ipoib"));
  config.memfs.stripe_size = units::KiB(flags.GetUint("stripe-kb", 512));
  config.memfs.io_threads =
      static_cast<std::uint32_t>(flags.GetUint("io-threads", 8));
  config.memfs.read_threads = config.memfs.io_threads;
  config.memfs.replication =
      static_cast<std::uint32_t>(flags.GetUint("replication", 1));
  config.memfs.use_ketama = flags.GetBool("ketama");
  if (flags.GetBool("mount-per-process")) {
    config.memfs.fuse.mounts_per_node =
        static_cast<std::uint32_t>(flags.GetUint("cores", 8));
  }
  const bool want_metrics = flags.GetBool("metrics");
  if (want_metrics) config.metrics = &metrics;
  const workloads::FsKind kind = ParseFs(flags.GetString("fs", "memfs"));

  // --trace is consumed by RunWorkflow but must be recognized up front so
  // the unknown-flag check below does not reject envelope runs using it.
  (void)flags.GetString("trace", "");
  (void)flags.GetUint("cores", 8);

  const auto unknown = flags.UnknownFlags();
  // Workload flags are recognized lazily; pre-register them.
  (void)flags.GetUint("file-kb", 1024);
  (void)flags.GetUint("files-per-proc", 8);
  (void)flags.GetUint("io-block-kb", 0);
  (void)flags.GetUint("degree", 6);
  (void)flags.GetUint("fragments", 512);
  (void)flags.GetUint("task-scale", 16);
  (void)flags.GetUint("size-scale", 16);
  const auto still_unknown = flags.UnknownFlags();
  if (!still_unknown.empty()) {
    for (const auto& name : still_unknown) {
      std::cerr << "unknown flag: --" << name << "\n";
    }
    std::cerr << "see --help\n";
    return 2;
  }
  (void)unknown;

  workloads::Testbed bed(kind, config);
  std::cout << "# memfs_sim: " << ToString(kind) << " on " << config.nodes
            << " nodes, " << ToString(config.fabric) << "\n\n";

  int rc;
  if (workload == "envelope") {
    rc = RunEnvelope(bed, flags, csv);
  } else if (workload == "montage" || workload == "blast") {
    rc = RunWorkflow(bed, flags, csv, workload);
  } else {
    std::cerr << "unknown workload: " << workload << " (see --help)\n";
    return 2;
  }

  if (want_metrics) {
    std::cout << "\n# per-operation latency profile\n";
    metrics.Report(std::cout, csv);
  }
  return rc;
}
