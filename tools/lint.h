// From-scratch token-level C++ linter enforcing MemFS repository rules.
//
// The linter tokenizes each source file (comments, string/char literals, raw
// strings and preprocessor lines handled; no preprocessing or type checking)
// and applies five rules:
//
//   ignored-status     A statement that calls a function declared anywhere in
//                      the linted corpus with a Status / Result<...> /
//                      Future<...> return type and discards the result.
//                      Names that are also declared with a void return
//                      somewhere are excluded (token-level linting cannot
//                      disambiguate overloads), as are statements containing
//                      assignments, control keywords, casts or braces.
//   acquire-release    A function body that calls .Acquire()/->Acquire() on a
//                      semaphore but never calls Release(); flags the lock
//                      pattern that leaks permits. Cross-function protocols
//                      (producer releases what the consumer acquired) are
//                      legitimate and use the suppression comment.
//   nondeterminism     Banned nondeterminism sources: std::rand/srand,
//                      std::random_device, time(), gettimeofday,
//                      clock_gettime, and the std::chrono wall clocks
//                      (system_clock/steady_clock/high_resolution_clock)
//                      outside src/sim/. All randomness must flow through the
//                      seeded common/rng.h and all time through the simulated
//                      clock.
//   using-namespace    `using namespace` in a header.
//   pragma-once        Header missing `#pragma once`.
//
// Suppression: a comment containing `lint: allow(<rule>)` (optionally a
// comma-separated rule list) suppresses findings of those rules on the
// comment's line and on the following line. Repository convention is to
// append a one-line justification:
//
//   // lint: allow(ignored-status) best-effort read repair; failure rechecked
//   ReplicatedSet(epoch, node, key, value);
//
// Output is machine-readable, one finding per line: `file:line: rule:
// message` (see Format).
#pragma once

#include <string>
#include <vector>

namespace memfs::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  bool suppressed = false;
};

// "file:line: rule: message" (suppressed findings gain a " [suppressed]"
// suffix).
std::string Format(const Finding& finding);

class Linter {
 public:
  // Registers in-memory source (tests) — `path` decides header-only rules
  // (".h" suffix) and the sim/ exemption for the wall-clock rule.
  void AddSource(std::string path, std::string contents);

  // Reads one file from disk. Returns false when unreadable.
  bool AddFile(const std::string& path);

  // Recursively registers every .h/.cc file under `root` in sorted order
  // (deterministic output). Returns the number of files added.
  int AddTree(const std::string& root);

  // Runs every rule over every registered source. Findings are sorted by
  // (file, line, rule); suppressed ones are dropped unless
  // `include_suppressed`.
  std::vector<Finding> Run(bool include_suppressed = false) const;

 private:
  struct Source {
    std::string path;
    std::string contents;
  };
  std::vector<Source> sources_;
};

}  // namespace memfs::lint
