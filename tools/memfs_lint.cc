// Repo linter CLI: tokenizes the given files/trees and reports rule
// violations, one `file:line: rule: message` per line.
//
//   memfs_lint [--include-suppressed] <file-or-dir>...
//
// Exit status: 0 when no unsuppressed finding, 1 otherwise, 2 on usage
// errors. `ctest -R lint` runs this over src/.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  bool include_suppressed = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--include-suppressed") {
      include_suppressed = true;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: memfs_lint [--include-suppressed] "
                   "<file-or-dir>...\n");
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "memfs_lint: no inputs (try --help)\n");
    return 2;
  }

  memfs::lint::Linter linter;
  int files = 0;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      files += linter.AddTree(path);
    } else if (linter.AddFile(path)) {
      ++files;
    } else {
      std::fprintf(stderr, "memfs_lint: cannot read %s\n", path.c_str());
      return 2;
    }
  }

  // Always lint with suppressed findings included so the summary can report
  // both counts; only unsuppressed ones fail the run.
  const auto findings = linter.Run(/*include_suppressed=*/true);
  int violations = 0;
  int suppressed = 0;
  for (const auto& finding : findings) {
    if (finding.suppressed) {
      ++suppressed;
      if (!include_suppressed) continue;
    } else {
      ++violations;
    }
    std::printf("%s\n", memfs::lint::Format(finding).c_str());
  }
  std::fprintf(stderr,
               "memfs_lint: %d file(s), %d violation(s), %d suppressed\n",
               files, violations, suppressed);
  return violations == 0 ? 0 : 1;
}
