// Quickstart: deploy MemFS on a simulated 4-node cluster, write a striped
// file, read it back from another node, and inspect the namespace and the
// per-server data distribution.
//
//   $ ./build/examples/quickstart
//
// This walks the public API end to end: Testbed construction, the Vfs
// interface (create/write/close, open/read/close, mkdir/readdir/stat), and
// the accounting hooks (per-server memory, client stats, network traffic).
#include <cstdio>

#include "common/units.h"
#include "memfs/memfs.h"
#include "sim/task.h"
#include "workloads/testbed.h"

namespace {

using namespace memfs;          // NOLINT: example brevity
using namespace memfs::units;   // NOLINT

// A simulated "application process": everything it does is asynchronous
// under the hood; the coroutine reads like plain file-system code.
sim::Task Application(workloads::Testbed& bed, bool& done) {
  fs::Vfs& vfs = bed.vfs();
  const fs::VfsContext writer{/*node=*/0, /*process=*/0};
  const fs::VfsContext reader{/*node=*/3, /*process=*/0};

  // --- Write a 3 MB file (6 stripes of 512 KB) from node 0 ---
  (void)co_await vfs.Mkdir(writer, "/demo");
  auto created = co_await vfs.Create(writer, "/demo/data.bin");
  if (!created.ok()) {
    std::printf("create failed: %s\n", created.status().ToString().c_str());
    co_return;
  }
  const Bytes content = Bytes::Pattern(MiB(3), /*seed=*/2014);
  for (std::uint64_t off = 0; off < content.size(); off += MiB(1)) {
    (void)co_await vfs.Write(writer, created.value(),
                             content.Slice(off, MiB(1)));
  }
  (void)co_await vfs.Close(writer, created.value());
  std::printf("wrote /demo/data.bin (%llu bytes) at t=%.3f ms\n",
              static_cast<unsigned long long>(content.size()),
              ToSeconds(bed.simulation().now()) * 1e3);

  // --- Read it back from node 3, verifying content ---
  auto opened = co_await vfs.Open(reader, "/demo/data.bin");
  Bytes back;
  while (true) {
    auto chunk = co_await vfs.Read(reader, opened.value(), back.size(),
                                   KiB(256));
    if (!chunk.ok() || chunk->empty()) break;
    back.Append(*chunk);
  }
  (void)co_await vfs.Close(reader, opened.value());
  std::printf("read back %llu bytes from node 3: content %s, t=%.3f ms\n",
              static_cast<unsigned long long>(back.size()),
              back.ContentEquals(content) ? "VERIFIED" : "MISMATCH",
              ToSeconds(bed.simulation().now()) * 1e3);

  // --- Namespace ---
  auto info = co_await vfs.Stat(reader, "/demo/data.bin");
  auto listing = co_await vfs.ReadDir(reader, "/demo");
  if (info.ok() && listing.ok()) {
    std::printf("stat: size=%llu sealed=%d; /demo has %zu entries\n",
                static_cast<unsigned long long>(info->size),
                info->sealed ? 1 : 0, listing->size());
  }
  done = true;
}

}  // namespace

int main() {
  workloads::TestbedConfig config;
  config.nodes = 4;
  config.fabric = workloads::Fabric::kDas4Ipoib;
  workloads::Testbed bed(workloads::FsKind::kMemFs, config);

  std::printf("MemFS quickstart: %u nodes, %s fabric, %llu KB stripes\n\n",
              config.nodes, std::string(ToString(config.fabric)).c_str(),
              static_cast<unsigned long long>(
                  bed.memfs()->config().stripe_size / memfs::units::kKiB));

  bool done = false;
  Application(bed, done);
  bed.simulation().Run();
  if (!done) {
    std::printf("application did not finish\n");
    return 1;
  }

  std::printf("\nper-server stored bytes (symmetrical distribution):\n");
  for (std::uint32_t n = 0; n < config.nodes; ++n) {
    std::printf("  server %u: %8llu bytes\n", n,
                static_cast<unsigned long long>(bed.NodeMemoryUsed(n)));
  }
  const auto& stats = bed.memfs()->stats();
  std::printf(
      "\nclient stats: %llu stripe sets, %llu stripe gets, %llu prefetches\n",
      static_cast<unsigned long long>(stats.stripe_sets),
      static_cast<unsigned long long>(stats.stripe_gets),
      static_cast<unsigned long long>(stats.prefetch_issued));
  std::printf("network moved %.2f MB in total\n",
              static_cast<double>(bed.network().total_bytes()) / 1e6);
  return 0;
}
