// Fault-tolerance example: MemFS with stripe replication (the paper's
// §3.2.5 future work). Writes a dataset with replication factor 2, kills a
// storage server mid-experiment, and shows reads transparently failing over
// to the surviving replicas — then contrasts the unreplicated configuration,
// where the same failure loses data.
//
//   $ ./build/examples/fault_tolerance
#include <cstdio>

#include "common/units.h"
#include "memfs/memfs.h"
#include "mtc/workflow.h"
#include "sim/task.h"
#include "workloads/testbed.h"

namespace {

using namespace memfs;         // NOLINT: example brevity
using namespace memfs::units;  // NOLINT

constexpr std::uint32_t kNodes = 8;
constexpr int kFiles = 16;

sim::Task WriteDataset(workloads::Testbed& bed, int& written) {
  fs::Vfs& vfs = bed.vfs();
  for (int f = 0; f < kFiles; ++f) {
    const fs::VfsContext ctx{static_cast<net::NodeId>(f % kNodes), 0};
    const std::string path = "/data_" + std::to_string(f);
    auto handle = co_await vfs.Create(ctx, path);
    if (!handle.ok()) co_return;
    (void)co_await vfs.Write(
        ctx, handle.value(), Bytes::Synthetic(MiB(2), mtc::FileSeed(path)));
    if ((co_await vfs.Close(ctx, handle.value())).ok()) ++written;
  }
}

sim::Task ReadDataset(workloads::Testbed& bed, int& readable) {
  fs::Vfs& vfs = bed.vfs();
  for (int f = 0; f < kFiles; ++f) {
    const fs::VfsContext ctx{static_cast<net::NodeId>((f + 1) % kNodes), 0};
    const std::string path = "/data_" + std::to_string(f);
    auto handle = co_await vfs.Open(ctx, path);
    if (!handle.ok()) continue;
    std::uint64_t offset = 0;
    bool ok = true;
    while (true) {
      auto chunk = co_await vfs.Read(ctx, handle.value(), offset, MiB(1));
      if (!chunk.ok()) {
        ok = false;
        break;
      }
      if (chunk->empty()) break;
      const Bytes expected = Bytes::Synthetic(offset + chunk->size(),
                                              mtc::FileSeed(path))
                                 .Slice(offset, chunk->size());
      if (!expected.ContentEquals(*chunk)) ok = false;
      offset += chunk->size();
    }
    (void)co_await vfs.Close(ctx, handle.value());
    if (ok && offset == MiB(2)) ++readable;
  }
}

void RunScenario(std::uint32_t replication) {
  workloads::TestbedConfig config;
  config.nodes = kNodes;
  config.memfs.replication = replication;
  workloads::Testbed bed(workloads::FsKind::kMemFs, config);

  int written = 0;
  WriteDataset(bed, written);
  bed.simulation().Run();

  std::printf("replication=%u: wrote %d/%d files (%.1f MB stored across the "
              "cluster)\n",
              replication, written, kFiles,
              static_cast<double>(bed.TotalMemoryUsed()) / 1e6);

  bed.storage()->SetServerDown(3, true);
  std::printf("  >> server 3 goes down\n");

  int readable = 0;
  ReadDataset(bed, readable);
  bed.simulation().Run();
  std::printf("  readable after failure: %d/%d files", readable, kFiles);
  if (replication > 1) {
    std::printf(" (%llu reads failed over to a surviving replica)",
                static_cast<unsigned long long>(
                    bed.memfs()->stats().replica_failovers));
  }
  std::printf("\n\n");
}

}  // namespace

int main() {
  std::printf("MemFS fault-tolerance demo: %d files of 2 MiB on %u nodes, "
              "one server killed\n\n",
              kFiles, kNodes);
  RunScenario(/*replication=*/1);
  RunScenario(/*replication=*/2);
  std::printf("Replication keeps every file readable at the cost the paper "
              "predicts: half the capacity, twice the write traffic.\n");
  return 0;
}
