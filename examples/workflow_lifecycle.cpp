// Full MTC lifecycle example (§2): stage inputs from permanent, disk-backed
// storage into the in-memory runtime FS, execute a Montage workflow against
// it, and stage the results back out — showing why the detour through a
// runtime file system pays off even including both staging phases.
//
//   $ ./build/examples/workflow_lifecycle
#include <cstdio>

#include "common/units.h"
#include "kvstore/kv_cluster.h"
#include "memfs/memfs.h"
#include "mtc/runner.h"
#include "mtc/scheduler.h"
#include "mtc/staging.h"
#include "net/fluid_network.h"
#include "workloads/montage.h"
#include "workloads/testbed.h"

namespace {

using namespace memfs;         // NOLINT: example brevity
using namespace memfs::units;  // NOLINT

constexpr std::uint32_t kNodes = 8;

// Disk-era cost model for the permanent store (GPFS class).
kv::KvOpCostModel DiskCosts() {
  kv::KvOpCostModel costs;
  costs.set_base = Millis(5);
  costs.set_ns_per_byte = 10.0;
  costs.get_base = Millis(5);
  costs.get_ns_per_byte = 10.0;
  costs.append_base = Millis(6);
  costs.append_ns_per_byte = 10.0;
  costs.delete_base = Millis(5);
  costs.workers = 4;
  return costs;
}

}  // namespace

int main() {
  // One simulated cluster hosting both deployments: a disk-backed permanent
  // store and the DRAM runtime FS.
  sim::Simulation sim;
  net::FairShareNetwork network(sim, net::Das4Ipoib(kNodes));
  std::vector<net::NodeId> all_nodes;
  for (std::uint32_t n = 0; n < kNodes; ++n) all_nodes.push_back(n);

  kv::KvServerConfig disk_server;
  disk_server.memory_limit = GiB(4096);  // disks: effectively unbounded
  disk_server.max_object_size = GiB(1);
  kv::KvCluster permanent_storage(sim, network, all_nodes, disk_server,
                                  DiskCosts());
  fs::MemFsConfig disk_client;
  disk_client.io_threads = 0;     // strict POSIX: synchronous writes
  disk_client.prefetch_depth = 0;
  fs::MemFs permanent(sim, network, permanent_storage, disk_client);

  kv::KvCluster runtime_storage(sim, network, all_nodes);
  fs::MemFs runtime(sim, network, runtime_storage, fs::MemFsConfig{});

  // The workflow, with its stage_in tasks stripped: inputs come from the
  // permanent store instead.
  workloads::MontageParams params;
  params.degree = 6;
  params.task_scale = 32;
  params.size_scale = 16;
  params.project_cpu_s = 2.0;
  mtc::Workflow workflow = workloads::BuildMontage(params);

  std::printf("Montage lifecycle on %u nodes: %zu tasks, %.1f MB runtime "
              "data\n\n",
              kNodes, workflow.tasks.size(),
              static_cast<double>(workflow.TotalOutputBytes()) / 1e6);

  // 1. Seed the permanent store with the input images (archive contents).
  mtc::Workflow seed;
  seed.name = "seed-archive";
  seed.directories = workflow.directories;
  for (const auto& task : workflow.tasks) {
    if (task.stage == "stage_in") seed.tasks.push_back(task);
  }
  mtc::UniformScheduler seed_scheduler;
  mtc::Runner seeder(sim, permanent, seed_scheduler,
                     {.nodes = kNodes, .cores_per_node = 4});
  auto seeded = seeder.Run(seed);
  if (!seeded.status.ok()) {
    std::printf("seeding failed: %s\n", seeded.status.ToString().c_str());
    return 1;
  }
  std::printf("[archive]   %zu input files on disk-backed storage\n",
              seed.tasks.size());

  // 2. Stage in: copy the raw inputs into the runtime FS.
  mtc::Stager stager(sim, {.streams = 16, .nodes = kNodes});
  const auto stage_in =
      stager.CopyTree(permanent, runtime, workflow.directories.front());
  if (!stage_in.status.ok()) {
    std::printf("stage-in failed: %s\n", stage_in.status.ToString().c_str());
    return 1;
  }
  std::printf("[stage-in]  %llu files, %.1f MB in %.2f s (%.0f MB/s)\n",
              static_cast<unsigned long long>(stage_in.files),
              static_cast<double>(stage_in.bytes) / 1e6,
              ToSeconds(stage_in.elapsed), stage_in.BandwidthMBps());

  // 3. Run the workflow (minus stage_in) against the runtime FS.
  mtc::Workflow compute;
  compute.name = workflow.name;
  for (auto& task : workflow.tasks) {
    if (task.stage != "stage_in") compute.tasks.push_back(task);
  }
  mtc::UniformScheduler scheduler;
  mtc::Runner runner(sim, runtime, scheduler,
                     {.nodes = kNodes, .cores_per_node = 8});
  const auto result = runner.Run(compute);
  if (!result.status.ok()) {
    std::printf("workflow failed: %s\n", result.status.ToString().c_str());
    return 1;
  }
  std::printf("[workflow]  makespan %.2f s (%.1f MB written to MemFS)\n",
              result.MakespanSeconds(),
              static_cast<double>(result.bytes_written) / 1e6);

  // 4. Stage out: only the mosaic goes back to permanent storage.
  const std::string mosaic = "/montage6/mosaic.fits";
  const auto stage_out = stager.CopyFiles(runtime, permanent, {mosaic});
  if (!stage_out.status.ok()) {
    std::printf("stage-out failed: %s\n",
                stage_out.status.ToString().c_str());
    return 1;
  }
  std::printf("[stage-out] %.1f MB mosaic archived in %.2f s\n",
              static_cast<double>(stage_out.bytes) / 1e6,
              ToSeconds(stage_out.elapsed));

  const double total = ToSeconds(stage_in.elapsed) +
                       result.MakespanSeconds() +
                       ToSeconds(stage_out.elapsed);
  std::printf("\ntotal lifecycle: %.2f s — the intermediate data (the bulk "
              "of all I/O) never touched a disk.\n",
              total);
  return 0;
}
