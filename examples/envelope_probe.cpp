// MTC-Envelope probe: measure the eight envelope metrics of §4.1 for a
// cluster size and file size of your choosing, against either file system.
//
//   $ ./build/examples/envelope_probe [nodes] [file_kb] [memfs|amfs]
//
// Prints write / 1-1 read / N-1 read bandwidth + throughput and the
// create/open metadata rates — the probe the paper uses to characterize a
// deployment before running real workflows on it.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "workloads/envelope.h"
#include "workloads/testbed.h"

int main(int argc, char** argv) {
  using namespace memfs;  // NOLINT: example brevity

  std::uint32_t nodes = 16;
  std::uint64_t file_kb = 1024;
  workloads::FsKind kind = workloads::FsKind::kMemFs;
  if (argc > 1) nodes = static_cast<std::uint32_t>(std::atoi(argv[1]));
  if (argc > 2) file_kb = static_cast<std::uint64_t>(std::atoll(argv[2]));
  if (argc > 3 && std::strcmp(argv[3], "amfs") == 0) {
    kind = workloads::FsKind::kAmfs;
  }

  workloads::TestbedConfig config;
  config.nodes = nodes;
  workloads::Testbed bed(kind, config);

  workloads::EnvelopeParams params;
  params.nodes = nodes;
  params.file_size = units::KiB(file_kb);
  params.files_per_proc = 8;
  workloads::EnvelopeBench bench(bed.simulation(), bed.vfs(), params,
                                 bed.amfs());

  std::printf("MTC Envelope: %s, %u nodes, %llu KB files, %s fabric\n\n",
              std::string(ToString(kind)).c_str(), nodes,
              static_cast<unsigned long long>(file_kb),
              std::string(ToString(config.fabric)).c_str());

  const auto write = bench.RunWrite();
  const auto read11 = bench.RunRead11();
  const auto readn1 = bench.RunReadN1();
  const auto create = bench.RunCreate(64);
  const auto open = bench.RunOpen();

  Table table({"metric", "bandwidth (MB/s)", "throughput (op/s)"});
  table.AddRow({"write", Table::Num(write.BandwidthMBps()),
                Table::Num(write.OpsPerSec(), 0)});
  table.AddRow({"1-1 read", Table::Num(read11.BandwidthMBps()),
                Table::Num(read11.OpsPerSec(), 0)});
  table.AddRow({"N-1 read", Table::Num(readn1.BandwidthMBps()),
                Table::Num(readn1.OpsPerSec(), 0)});
  table.AddRow({"create", "-", Table::Num(create.OpsPerSec(), 0)});
  table.AddRow({"open", "-", Table::Num(open.OpsPerSec(), 0)});
  table.Print(std::cout, WantCsv(argc, argv));
  return 0;
}
