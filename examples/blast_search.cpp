// BLAST example: the paper's bioinformatics workload on MemFS. A sequence
// database is split into fragments, formatted, queried by a swarm of
// blastall tasks (each reading a DB fragment AND a query batch), and merged
// — demonstrating the two-input access pattern that defeats locality-based
// scheduling, plus vertical scaling on a fixed node count.
//
//   $ ./build/examples/blast_search
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "mtc/runner.h"
#include "mtc/scheduler.h"
#include "workloads/blast.h"
#include "workloads/testbed.h"

namespace {

using namespace memfs;  // NOLINT: example brevity

mtc::WorkflowResult RunBlast(std::uint32_t nodes, std::uint32_t cores,
                             const mtc::Workflow& workflow) {
  workloads::TestbedConfig config;
  config.nodes = nodes;
  config.fabric = workloads::Fabric::kEc2TenGbE;
  workloads::Testbed bed(workloads::FsKind::kMemFs, config);
  mtc::UniformScheduler scheduler;
  mtc::Runner runner(bed.simulation(), bed.vfs(), scheduler,
                     {.nodes = nodes, .cores_per_node = cores,
                      .io_block = units::KiB(256)});
  return runner.Run(workflow);
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = WantCsv(argc, argv);

  workloads::BlastParams params;
  params.fragments = 512;
  params.task_scale = 32;       // 16 fragments
  params.size_scale = 128;      // ~870 KB fragments
  params.queries_per_fragment = 4;
  params.formatdb_cpu_s = 4.0;
  params.blastall_cpu_s = 1.5;
  const mtc::Workflow workflow = workloads::BuildBlast(params);

  std::printf(
      "BLAST nt search on MemFS (EC2 10GbE fabric): %zu tasks, %.1f MB "
      "runtime data\n\n",
      workflow.tasks.size(),
      static_cast<double>(workflow.TotalOutputBytes()) / 1e6);

  Table table({"cores (8 nodes)", "formatdb (s)", "blastall (s)", "merge (s)",
               "makespan (s)"});
  for (std::uint32_t cores : {1u, 2u, 4u}) {
    const auto result = RunBlast(8, cores, workflow);
    if (!result.status.ok()) {
      std::printf("run failed: %s\n", result.status.ToString().c_str());
      return 1;
    }
    const auto* formatdb = result.Stage("formatdb");
    const auto* blastall = result.Stage("blastall");
    const auto* merge = result.Stage("merge");
    table.AddRow({Table::Int(8 * cores),
                  Table::Num(formatdb ? formatdb->SpanSeconds() : 0, 2),
                  Table::Num(blastall ? blastall->SpanSeconds() : 0, 2),
                  Table::Num(merge ? merge->SpanSeconds() : 0, 2),
                  Table::Num(result.MakespanSeconds(), 2)});
  }
  table.Print(std::cout, csv);
  std::printf(
      "\nformatdb is CPU-bound (scales with cores); blastall is I/O-bound\n"
      "and flattens once the NICs saturate — the paper's Fig. 13 behaviour.\n");
  return 0;
}
