// Montage mosaic example: run a (scaled-down) 6x6 Montage workflow on a
// simulated 8-node cluster through BOTH file systems and compare per-stage
// times, storage balance and aggregate memory — the paper's §4.2 story in
// one program.
//
//   $ ./build/examples/montage_mosaic
#include <cstdio>
#include <iostream>
#include <string>

#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"
#include "mtc/runner.h"
#include "mtc/scheduler.h"
#include "workloads/montage.h"
#include "workloads/testbed.h"

namespace {

using namespace memfs;  // NOLINT: example brevity

struct RunOutcome {
  mtc::WorkflowResult result;
  double balance_cv = 0.0;
  std::uint64_t total_memory = 0;
};

RunOutcome RunOn(workloads::FsKind kind, const mtc::Workflow& workflow,
                 std::uint32_t nodes, std::uint32_t cores) {
  workloads::TestbedConfig config;
  config.nodes = nodes;
  workloads::Testbed bed(kind, config);

  mtc::RunnerConfig runner_config;
  runner_config.nodes = nodes;
  runner_config.cores_per_node = cores;
  runner_config.io_block = units::KiB(128);

  RunOutcome out;
  if (kind == workloads::FsKind::kMemFs) {
    mtc::UniformScheduler scheduler;
    mtc::Runner runner(bed.simulation(), bed.vfs(), scheduler, runner_config);
    out.result = runner.Run(workflow);
  } else {
    mtc::LocalityScheduler scheduler(*bed.amfs());
    mtc::Runner runner(bed.simulation(), bed.vfs(), scheduler, runner_config);
    out.result = runner.Run(workflow);
  }

  RunningStats balance;
  for (std::uint32_t n = 0; n < nodes; ++n) {
    balance.Add(static_cast<double>(bed.NodeMemoryUsed(n)));
  }
  out.balance_cv = balance.cv();
  out.total_memory = bed.TotalMemoryUsed();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = memfs::WantCsv(argc, argv);

  workloads::MontageParams params;
  params.degree = 6;
  params.task_scale = 16;  // ~155 images; DAG shape preserved
  params.size_scale = 16;  // 128-256 KB files
  params.project_cpu_s = 2.0;
  const mtc::Workflow workflow = workloads::BuildMontage(params);

  std::printf(
      "Montage %ux%u (task_scale=%u, size_scale=%llu): %zu tasks, %.1f MB "
      "runtime data, 8 nodes x 4 cores\n\n",
      params.degree, params.degree, params.task_scale,
      static_cast<unsigned long long>(params.size_scale),
      workflow.tasks.size(),
      static_cast<double>(workflow.TotalOutputBytes()) / 1e6);

  const auto memfs_run = RunOn(workloads::FsKind::kMemFs, workflow, 8, 4);
  const auto amfs_run = RunOn(workloads::FsKind::kAmfs, workflow, 8, 4);

  Table stage_table({"stage", "tasks", "MemFS span (s)", "AMFS span (s)"});
  for (const auto& stage : memfs_run.result.stages) {
    const auto* amfs_stage = amfs_run.result.Stage(stage.stage);
    stage_table.AddRow({stage.stage, Table::Int(stage.tasks),
                        Table::Num(stage.SpanSeconds(), 2),
                        Table::Num(amfs_stage ? amfs_stage->SpanSeconds() : 0,
                                   2)});
  }
  stage_table.Print(std::cout, csv);

  std::printf("\nmakespan:        MemFS %.2f s | AMFS %.2f s (%.2fx)\n",
              memfs_run.result.MakespanSeconds(),
              amfs_run.result.MakespanSeconds(),
              amfs_run.result.MakespanSeconds() /
                  memfs_run.result.MakespanSeconds());
  std::printf("storage balance: MemFS cv=%.3f | AMFS cv=%.3f\n",
              memfs_run.balance_cv, amfs_run.balance_cv);
  std::printf("aggregate mem:   MemFS %.1f MB | AMFS %.1f MB\n",
              static_cast<double>(memfs_run.total_memory) / 1e6,
              static_cast<double>(amfs_run.total_memory) / 1e6);
  return memfs_run.result.status.ok() && amfs_run.result.status.ok() ? 0 : 1;
}
