// Unit tests for the incident flight recorder: trigger detection (SLO
// violations, breaker OPEN transitions, migration stalls), episode merging
// and trigger folding, frozen timeline/balance/fault slices, exemplar
// attribution through "server" span annotations, cause ranking, and the
// determinism of the exported report. The end-to-end neutrality claim
// (diagnosis on == off, byte-identical digests and JSON) is pinned by the
// incident_determinism ctest.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "diagnose/diagnose.h"
#include "monitor/monitor.h"
#include "monitor/slo.h"
#include "sim/fault.h"
#include "sim/simulation.h"
#include "trace/trace.h"

namespace memfs::diagnose {
namespace {

// Monitor over two "mem" instances and one breaker gauge, 8 windows of 10:
//   w0 [ 0,10): balanced (10,10)
//   w1 [10,20): skewed   (10,30)
//   w2 [20,30): skewed   (10,40), kv.breaker/1 opens, exemplar recorded
//   w3 [30,40): skewed   (10,30)
//   w4 [40,50): balanced (10,10), breaker closes
//   w5 [50,60): balanced
//   w6 [60,70): skewed   (10,50)
//   w7 [70,80): balanced
// The skew(mem) rule fails windows 1-3 and 6; with the default merge gap
// that is two episodes.
struct RecorderFixture {
  sim::Simulation sim;
  MetricsRegistry registry;
  monitor::Monitor mon;
  trace::Tracer tracer;
  trace::TraceContext root;
  trace::TraceContext kv;

  explicit RecorderFixture() : mon(sim, monitor::MonitorConfig{10, 100}),
                               tracer(sim) {
    mon.WatchRegistry(&registry);
    mon.HarvestExemplars(&registry);
    std::int64_t& a = registry.Gauge(InstanceGaugeName("mem", 0));
    std::int64_t& b = registry.Gauge(InstanceGaugeName("mem", 1));
    std::int64_t& breaker = registry.Gauge(InstanceGaugeName("kv.breaker", 1));
    sim.Schedule(1, [&] {
      a = 10;
      b = 10;
      breaker = 0;
    });
    // The exemplar operation: a vfs root span over [5, 25) whose kv child
    // pins server 1 for [5, 17); the rest is client-side time.
    sim.Schedule(5, [this] {
      root = tracer.StartTrace("vfs.write", "vfs", /*node=*/2);
      kv = trace::Child(root, "kv.set", "kv");
      trace::Annotate(kv, "server", "1");
    });
    sim.Schedule(17, [this] { trace::End(kv); });
    sim.Schedule(25, [this] {
      trace::End(root);
      Exemplar tag;
      tag.trace_id = root.trace_id;
      tag.span_id = root.span_id;
      tag.node = 2;
      tag.at = sim.now();
      registry.Histogram("vfs.write").Record(20'000, tag);
    });
    sim.Schedule(11, [&] { b = 30; });
    sim.Schedule(21, [&] {
      b = 40;
      breaker = 1;
    });
    sim.Schedule(31, [&] { b = 30; });
    sim.Schedule(41, [&] {
      b = 10;
      breaker = 0;
    });
    sim.Schedule(61, [&] { b = 50; });
    sim.Schedule(71, [&] { b = 10; });
    sim.Schedule(85, [] {});
    sim.Run();
  }

  std::vector<monitor::SloResult> SkewResults() {
    monitor::SloWatchdog watchdog(mon);
    [&] { ASSERT_TRUE(watchdog.AddRule("skew(mem) < 1.25")); }();
    return watchdog.Evaluate();
  }

  IncidentConfig Config() {
    IncidentConfig config;
    config.balance_family = "mem";
    return config;
  }
};

TEST(FlightRecorderTest, MergesEpisodesAndFoldsRepeatedTriggers) {
  RecorderFixture fx;
  FlightRecorder recorder(fx.mon, fx.Config());
  recorder.SetSloResults(fx.SkewResults());
  const std::vector<Incident> incidents = recorder.Diagnose();

  // Windows 1-3 coalesce (gap 0 between consecutive violations); window 6
  // is beyond the merge gap and opens its own incident.
  ASSERT_EQ(incidents.size(), 2u);
  EXPECT_EQ(incidents[0].first_window, 1u);
  EXPECT_EQ(incidents[0].last_window, 3u);
  EXPECT_EQ(incidents[1].first_window, 6u);
  EXPECT_EQ(incidents[1].last_window, 6u);

  // Three violating windows fold into ONE slo trigger carrying the count.
  const Incident& first = incidents[0];
  std::size_t slo_triggers = 0;
  for (const Trigger& trigger : first.triggers) {
    if (trigger.kind == TriggerKind::kSloViolation) {
      ++slo_triggers;
      EXPECT_EQ(trigger.window, 1u);
      EXPECT_EQ(trigger.windows, 3u);
    }
  }
  EXPECT_EQ(slo_triggers, 1u);

  // Padded slice: context 2 around [1, 3], clamped at window 0.
  EXPECT_EQ(first.slice_first, 0u);
  EXPECT_EQ(first.slice_last, 5u);
  EXPECT_EQ(first.begin, 10u);
  EXPECT_EQ(first.end, 40u);
  EXPECT_EQ(first.slice_begin, 0u);
  EXPECT_EQ(first.slice_end, 60u);
}

TEST(FlightRecorderTest, BreakerTransitionAttachesToOverlappingEpisode) {
  RecorderFixture fx;
  FlightRecorder recorder(fx.mon, fx.Config());
  recorder.SetSloResults(fx.SkewResults());
  const std::vector<Incident> incidents = recorder.Diagnose();
  ASSERT_EQ(incidents.size(), 2u);

  const Incident& first = incidents[0];
  bool breaker_seen = false;
  for (const Trigger& trigger : first.triggers) {
    if (trigger.kind != TriggerKind::kBreakerOpen) continue;
    breaker_seen = true;
    EXPECT_EQ(trigger.detail, InstanceGaugeName("kv.breaker", 1));
    EXPECT_EQ(trigger.window, 2u);
    EXPECT_EQ(trigger.server, 1u);
  }
  EXPECT_TRUE(breaker_seen);
  // The second episode (window 6) has no breaker transition attached.
  for (const Trigger& trigger : incidents[1].triggers) {
    EXPECT_EQ(trigger.kind, TriggerKind::kSloViolation);
  }
}

TEST(FlightRecorderTest, FreezesBalanceTimelineAndRanksHotInstance) {
  RecorderFixture fx;
  FlightRecorder recorder(fx.mon, fx.Config());
  recorder.SetSloResults(fx.SkewResults());
  const std::vector<Incident> incidents = recorder.Diagnose();
  ASSERT_EQ(incidents.size(), 2u);

  const Incident& first = incidents[0];
  // Worst skew in the slice is window 2: max 40 / mean 25 = 1.6, held by
  // instance 1.
  EXPECT_DOUBLE_EQ(first.balance_summary.worst_skew, 1.6);
  EXPECT_EQ(first.balance_summary.worst_window, 2u);
  EXPECT_EQ(first.balance_summary.hot_instance, 1u);
  EXPECT_FALSE(first.balance.empty());

  // The timeline freezes the rule's family and the breaker gauges.
  bool has_mem = false;
  bool has_breaker = false;
  for (const TimelineSlice& slice : first.timeline) {
    if (slice.series == InstanceGaugeName("mem", 1)) has_mem = true;
    if (slice.series == InstanceGaugeName("kv.breaker", 1)) {
      has_breaker = true;
    }
    for (const TimelinePoint& point : slice.points) {
      EXPECT_GE(point.start, first.slice_begin);
      EXPECT_LE(point.end, first.slice_end);
    }
  }
  EXPECT_TRUE(has_mem);
  EXPECT_TRUE(has_breaker);

  // Without a tracer, causes still rank the breaker server + hot instance:
  // server 1 collects both (0.5 + 0.25).
  ASSERT_FALSE(first.causes.empty());
  EXPECT_EQ(first.causes[0].server, 1u);
  EXPECT_DOUBLE_EQ(first.causes[0].score, 0.75);
  EXPECT_EQ(first.causes[0].evidence.size(), 2u);
}

TEST(FlightRecorderTest, ExemplarIsFrozenAndAttributedThroughSpans) {
  RecorderFixture fx;
  FlightRecorder recorder(fx.mon, fx.Config());
  recorder.SetSloResults(fx.SkewResults());
  recorder.SetTracer(&fx.tracer);
  const std::vector<Incident> incidents = recorder.Diagnose();
  ASSERT_EQ(incidents.size(), 2u);

  const Incident& first = incidents[0];
  ASSERT_EQ(first.exemplars.size(), 1u);
  const ExemplarAttribution& exemplar = first.exemplars[0];
  EXPECT_EQ(exemplar.exemplar.histogram, "vfs.write");
  EXPECT_EQ(exemplar.exemplar.sample.nanos, 20'000u);
  ASSERT_TRUE(exemplar.path.found);
  // Root span runs [5, 25); its kv child [5, 17) resolves to server 1 via
  // the "server" annotation, the remainder [17, 25) is client-side.
  ASSERT_EQ(exemplar.by_server.size(), 2u);
  EXPECT_EQ(exemplar.by_server[0].server, 1u);
  EXPECT_EQ(exemplar.by_server[0].nanos, 12u);
  EXPECT_DOUBLE_EQ(exemplar.by_server[0].share, 0.6);
  EXPECT_EQ(exemplar.by_server[1].server, kNoServer);
  EXPECT_EQ(exemplar.by_server[1].nanos, 8u);

  // The attributed share feeds the ranking: server 1 now also carries the
  // exemplar credit on top of breaker + hot-instance evidence.
  ASSERT_FALSE(first.causes.empty());
  EXPECT_EQ(first.causes[0].server, 1u);
  EXPECT_DOUBLE_EQ(first.causes[0].score, 0.75 + 0.6);
  EXPECT_EQ(first.causes[0].evidence.size(), 3u);
}

TEST(FlightRecorderTest, OverlappingFaultsAreFrozenAndScored) {
  RecorderFixture fx;
  FlightRecorder recorder(fx.mon, fx.Config());
  recorder.SetSloResults(fx.SkewResults());

  sim::FaultEvent crash;  // inside the first incident's slice [0, 60)
  crash.kind = sim::FaultKind::kServerCrash;
  crash.start = 15;
  crash.duration = 10;
  crash.server = 6;
  sim::FaultEvent far_away;  // outside every slice
  far_away.kind = sim::FaultKind::kServerSlow;
  far_away.start = 500;
  far_away.duration = 100;
  far_away.server = 0;
  recorder.SetFaults({crash, far_away});

  const std::vector<Incident> incidents = recorder.Diagnose();
  ASSERT_EQ(incidents.size(), 2u);
  ASSERT_EQ(incidents[0].faults.size(), 1u);
  EXPECT_EQ(incidents[0].faults[0].server, 6u);
  EXPECT_TRUE(incidents[1].faults.empty());

  // The crashed server outranks the breaker/hot-instance suspect.
  ASSERT_GE(incidents[0].causes.size(), 2u);
  EXPECT_EQ(incidents[0].causes[0].server, 6u);
  EXPECT_DOUBLE_EQ(incidents[0].causes[0].score, 1.0);
  EXPECT_EQ(incidents[0].causes[1].server, 1u);
  // The verdict names the top cause.
  EXPECT_NE(incidents[0].verdict.find("top cause server 6"),
            std::string::npos);
}

TEST(FlightRecorderTest, MigrationStallOpensItsOwnIncident) {
  sim::Simulation sim;
  MetricsRegistry registry;
  monitor::Monitor mon(sim, monitor::MonitorConfig{10, 100});
  mon.WatchRegistry(&registry);
  std::int64_t& active = registry.Gauge("migrate.active");
  std::int64_t& moved = registry.Gauge("migrate.keys_moved");
  sim.Schedule(1, [&] {
    active = 1;
    moved = 5;
  });
  sim.Schedule(11, [&] { moved = 10; });
  // Windows 2 and 3 show an active sweep with no progress.
  sim.Schedule(45, [] {});
  sim.Run();

  IncidentConfig config;
  config.stall_windows = 2;
  FlightRecorder recorder(mon, config);
  const std::vector<Incident> incidents = recorder.Diagnose();
  ASSERT_EQ(incidents.size(), 1u);
  ASSERT_EQ(incidents[0].triggers.size(), 1u);
  EXPECT_EQ(incidents[0].triggers[0].kind, TriggerKind::kMigrationStall);
  EXPECT_EQ(incidents[0].triggers[0].window, 3u);
  // The migration gauges are frozen into the slice.
  bool has_moved = false;
  for (const TimelineSlice& slice : incidents[0].timeline) {
    if (slice.series == "migrate.keys_moved") has_moved = true;
  }
  EXPECT_TRUE(has_moved);
}

TEST(FlightRecorderTest, NoTriggersMeansNoIncidents) {
  sim::Simulation sim;
  MetricsRegistry registry;
  monitor::Monitor mon(sim, monitor::MonitorConfig{10, 100});
  mon.WatchRegistry(&registry);
  std::int64_t& g = registry.Gauge("steady");
  sim.Schedule(1, [&] { g = 10; });
  sim.Schedule(25, [] {});
  sim.Run();

  FlightRecorder recorder(mon);
  monitor::SloWatchdog watchdog(mon);
  ASSERT_TRUE(watchdog.AddRule("value(steady) > 0"));  // satisfied
  recorder.SetSloResults(watchdog.Evaluate());
  EXPECT_TRUE(recorder.Diagnose().empty());

  std::ostringstream report;
  FlightRecorder::Print({}, report);
  EXPECT_NE(report.str().find("no incidents"), std::string::npos);
}

TEST(FlightRecorderTest, ReportAndJsonAreDeterministic) {
  RecorderFixture fx;
  FlightRecorder recorder(fx.mon, fx.Config());
  recorder.SetSloResults(fx.SkewResults());
  recorder.SetTracer(&fx.tracer);

  const std::vector<Incident> once = recorder.Diagnose();
  const std::vector<Incident> twice = recorder.Diagnose();
  std::ostringstream json_a;
  std::ostringstream json_b;
  FlightRecorder::WriteJson(once, json_a);
  FlightRecorder::WriteJson(twice, json_b);
  EXPECT_EQ(json_a.str(), json_b.str());
  EXPECT_NE(json_a.str().find("\"incidents\":["), std::string::npos);
  EXPECT_NE(json_a.str().find("\"verdict\":"), std::string::npos);
  EXPECT_NE(json_a.str().find("\"by_server\":"), std::string::npos);

  std::ostringstream human_a;
  std::ostringstream human_b;
  FlightRecorder::Print(once, human_a);
  FlightRecorder::Print(twice, human_b);
  EXPECT_EQ(human_a.str(), human_b.str());
  EXPECT_NE(human_a.str().find("verdict:"), std::string::npos);
  EXPECT_NE(human_a.str().find("(3 windows)"), std::string::npos);
}

}  // namespace
}  // namespace memfs::diagnose
