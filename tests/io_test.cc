// Tests for the batched data path: KvServer MULTI_* commands, the
// KvCluster::Batch protocol (per-item verdicts, partial-batch retry,
// fault interaction), and the src/io OpScheduler that coalesces issuer
// operations into batches.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "common/units.h"
#include "io/op_scheduler.h"
#include "kvstore/kv_cluster.h"
#include "kvstore/kv_server.h"
#include "net/fluid_network.h"
#include "test_util.h"

namespace memfs {
namespace {

using memfs::testing::Await;

sim::Task After(sim::Simulation& sim, sim::SimTime delay,
                std::function<void()> fn) {
  co_await sim.Delay(delay);
  fn();
}

std::vector<kv::BatchItem> MakeItems(
    std::vector<std::pair<std::string, Bytes>> pairs) {
  std::vector<kv::BatchItem> items;
  for (auto& [key, value] : pairs) {
    items.push_back(kv::BatchItem{std::move(key), std::move(value)});
  }
  return items;
}

// --- KvServer MULTI_* state machine ---

TEST(KvServerBatchTest, MultiSetReportsPerItemVerdicts) {
  kv::KvServerConfig config;
  config.max_object_size = 100;
  kv::KvServer server(config);
  auto results = server.MultiSet(MakeItems({{"a", Bytes::Synthetic(50, 1)},
                                            {"big", Bytes::Synthetic(101, 2)},
                                            {"b", Bytes::Synthetic(60, 3)}}));
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_EQ(results[1].status.code(), ErrorCode::kTooLarge);
  EXPECT_TRUE(results[2].status.ok());
  // The failed item did not abort the rest.
  EXPECT_TRUE(server.Exists("b"));
  EXPECT_FALSE(server.Exists("big"));
}

TEST(KvServerBatchTest, MultiGetMixesHitsAndMisses) {
  kv::KvServer server;
  ASSERT_TRUE(server.Set("x", Bytes::Copy("xv")).ok());
  ASSERT_TRUE(server.Set("z", Bytes::Copy("zv")).ok());
  auto results = server.MultiGet(
      MakeItems({{"x", {}}, {"y", {}}, {"z", {}}}));
  ASSERT_EQ(results.size(), 3u);
  ASSERT_TRUE(results[0].status.ok());
  EXPECT_EQ(results[0].value.view(), "xv");
  EXPECT_EQ(results[1].status.code(), ErrorCode::kNotFound);
  ASSERT_TRUE(results[2].status.ok());
  EXPECT_EQ(results[2].value.view(), "zv");
  EXPECT_EQ(server.stats().hits, 2u);
  EXPECT_EQ(server.stats().misses, 1u);
}

TEST(KvServerBatchTest, MultiDeleteAndAddAppendDispatch) {
  kv::KvServer server;
  ASSERT_TRUE(server.Set("a", Bytes::Copy("1")).ok());
  auto deleted = server.MultiDelete(MakeItems({{"a", {}}, {"b", {}}}));
  ASSERT_EQ(deleted.size(), 2u);
  EXPECT_TRUE(deleted[0].status.ok());
  EXPECT_EQ(deleted[1].status.code(), ErrorCode::kNotFound);

  // ADD and APPEND flavors go through the same per-item dispatcher.
  kv::BatchItem add{"a", Bytes::Copy("v")};
  EXPECT_TRUE(server.ApplyBatchItem(kv::BatchKind::kAdd, add).status.ok());
  kv::BatchItem dup{"a", Bytes::Copy("w")};
  EXPECT_EQ(server.ApplyBatchItem(kv::BatchKind::kAdd, dup).status.code(),
            ErrorCode::kExists);
  kv::BatchItem app{"a", Bytes::Copy("+")};
  EXPECT_TRUE(server.ApplyBatchItem(kv::BatchKind::kAppend, app).status.ok());
  EXPECT_EQ(server.Get("a")->view(), "v+");
}

// --- KvCluster::Batch over the simulated network ---

class KvBatchClusterTest : public ::testing::Test {
 protected:
  KvBatchClusterTest(kv::KvClientPolicy policy = {})
      : network_(sim_, net::Das4Ipoib(4)),
        cluster_(sim_, network_, {0, 1, 2, 3}, kv::KvServerConfig{},
                 kv::KvOpCostModel{}, nullptr, policy) {}

  sim::Simulation sim_;
  net::FairShareNetwork network_;
  kv::KvCluster cluster_;
};

TEST_F(KvBatchClusterTest, BatchRoundTripAndStats) {
  auto set = Await(sim_, cluster_.Batch(
                             0, 1, kv::BatchKind::kSet,
                             MakeItems({{"a", Bytes::Copy("av")},
                                        {"b", Bytes::Copy("bv")},
                                        {"c", Bytes::Copy("cv")}})));
  ASSERT_EQ(set.size(), 3u);
  for (const auto& item : set) EXPECT_TRUE(item.status.ok());

  auto got = Await(sim_, cluster_.Batch(2, 1, kv::BatchKind::kGet,
                                        MakeItems({{"a", {}},
                                                   {"missing", {}},
                                                   {"c", {}}})));
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].value.view(), "av");
  EXPECT_EQ(got[1].status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(got[2].value.view(), "cv");

  EXPECT_EQ(cluster_.stats().batch_rpcs, 2u);
  EXPECT_EQ(cluster_.stats().batch_items, 6u);
  EXPECT_EQ(cluster_.stats().single_rpcs, 0u);
  EXPECT_EQ(cluster_.server_stats(1).batches, 2u);
  EXPECT_EQ(cluster_.server_stats(1).batched_items, 6u);
  EXPECT_EQ(cluster_.server_stats(0).batches, 0u);
  // One MULTI_SET = one server-side stats bump per item.
  EXPECT_EQ(cluster_.server(1).stats().sets, 3u);
  EXPECT_EQ(cluster_.server(1).stats().gets, 3u);
}

TEST_F(KvBatchClusterTest, BatchOfOneMatchesSingleOpCost) {
  // A batch of one pays the same framing + service as the single-op path.
  const auto t0 = sim_.now();
  (void)Await(sim_, cluster_.Set(0, 1, "single", Bytes::Synthetic(2048, 1)));
  const auto single = sim_.now() - t0;

  const auto t1 = sim_.now();
  auto results =
      Await(sim_, cluster_.Batch(0, 1, kv::BatchKind::kSet,
                                 MakeItems({{"batchd", // same key length
                                             Bytes::Synthetic(2048, 2)}})));
  const auto batched = sim_.now() - t1;
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_EQ(single, batched);
}

class KvBatchDeadlineTest : public KvBatchClusterTest {
 protected:
  static kv::KvClientPolicy SlowPolicy() {
    kv::KvClientPolicy policy;
    policy.op_deadline = units::Micros(2500);
    policy.retry.max_attempts = 4;
    return policy;
  }
  KvBatchDeadlineTest() : KvBatchClusterTest(SlowPolicy()) {}
};

TEST_F(KvBatchDeadlineTest, PartialBatchRetriesOnlyUnresolvedItems) {
  // ~10.15us for the first 1 KiB SET and ~6.15us for each later item (the
  // message's 4us dispatch is paid once), x100 slowdown: commits land at
  // ~1.015, 1.63, 2.245 and 2.86ms. With a 2.5ms deadline three items beat
  // the cut; the retry round must carry exactly the fourth — the server
  // applies 4 sets, not 5.
  cluster_.SetServerSlowdown(1, 100.0);
  auto results = Await(
      sim_, cluster_.Batch(0, 1, kv::BatchKind::kSet,
                           MakeItems({{"k0", Bytes::Synthetic(units::KiB(1), 0)},
                                      {"k1", Bytes::Synthetic(units::KiB(1), 1)},
                                      {"k2", Bytes::Synthetic(units::KiB(1), 2)},
                                      {"k3", Bytes::Synthetic(units::KiB(1), 3)}})));
  ASSERT_EQ(results.size(), 4u);
  for (const auto& item : results) EXPECT_TRUE(item.status.ok());

  EXPECT_EQ(cluster_.server(1).stats().sets, 4u);
  EXPECT_GE(cluster_.stats().retries, 1u);
  EXPECT_GE(cluster_.stats().deadline_exceeded, 1u);
  EXPECT_EQ(cluster_.server_stats(1).batches, 2u);
  EXPECT_EQ(cluster_.server_stats(1).batched_items, 5u);  // 4 + 1 retried
  EXPECT_GE(cluster_.server_stats(1).retries, 1u);
}

TEST_F(KvBatchClusterTest, BatchRetriesAcrossServerDowntime) {
  cluster_.SetServerDown(0, true);
  // Recovery lands after the first attempt's failure timeout (1 ms) and
  // before the earliest retry (>= 1.2 ms with the 200us base backoff).
  After(sim_, units::Micros(1100), [this] {
    cluster_.SetServerDown(0, false);
  });
  auto results = Await(sim_, cluster_.Batch(
                                 1, 0, kv::BatchKind::kSet,
                                 MakeItems({{"a", Bytes::Copy("1")},
                                            {"b", Bytes::Copy("2")},
                                            {"c", Bytes::Copy("3")}})));
  ASSERT_EQ(results.size(), 3u);
  for (const auto& item : results) EXPECT_TRUE(item.status.ok());
  EXPECT_EQ(cluster_.server(0).stats().sets, 3u);
  EXPECT_GE(cluster_.stats().retries, 1u);
  EXPECT_EQ(cluster_.server_stats(0).batches, 2u);
}

TEST_F(KvBatchClusterTest, WipeOnRestartYieldsMixedBatchGet) {
  auto set = Await(sim_, cluster_.Batch(
                             0, 0, kv::BatchKind::kSet,
                             MakeItems({{"k0", Bytes::Copy("v0")},
                                        {"k1", Bytes::Copy("v1")},
                                        {"k2", Bytes::Copy("v2")},
                                        {"k3", Bytes::Copy("v3")}})));
  for (const auto& item : set) ASSERT_TRUE(item.status.ok());

  // Memcached restart: the process comes back empty.
  cluster_.SetServerDown(0, true);
  cluster_.SetServerDown(0, false, /*wipe_on_restart=*/true);
  auto reset = Await(sim_, cluster_.Batch(1, 0, kv::BatchKind::kSet,
                                          MakeItems({{"k1", Bytes::Copy("r1")},
                                                     {"k3", Bytes::Copy("r3")}})));
  for (const auto& item : reset) ASSERT_TRUE(item.status.ok());

  auto got = Await(sim_, cluster_.Batch(2, 0, kv::BatchKind::kGet,
                                        MakeItems({{"k0", {}},
                                                   {"k1", {}},
                                                   {"k2", {}},
                                                   {"k3", {}}})));
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(got[1].value.view(), "r1");
  EXPECT_EQ(got[2].status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(got[3].value.view(), "r3");
}

// --- OpScheduler coalescing ---

TEST(OpSchedulerTest, SameInstantOpsCoalesceIntoOneBatch) {
  sim::Simulation sim;
  net::FairShareNetwork network(sim, net::Das4Ipoib(4));
  kv::KvCluster cluster(sim, network, {0, 1, 2, 3});
  io::OpScheduler sched(sim, cluster);

  std::vector<sim::Future<Status>> writes;
  for (int i = 0; i < 8; ++i) {
    writes.push_back(sched.Set(0, 1, "k" + std::to_string(i),
                               Bytes::Synthetic(512, i)));
  }
  sim.Run();
  for (auto& f : writes) {
    ASSERT_TRUE(f.ready());
    EXPECT_TRUE(f.value().ok());
  }
  EXPECT_EQ(sched.stats().batched_ops, 8u);
  EXPECT_EQ(sched.stats().batches, 1u);
  EXPECT_EQ(sched.stats().max_batch, 8u);
  EXPECT_EQ(sched.stats().passthrough_ops, 0u);
  EXPECT_EQ(cluster.stats().batch_rpcs, 1u);
  EXPECT_EQ(cluster.stats().single_rpcs, 0u);

  // Reads drain back through the same lane, batched too.
  std::vector<sim::Future<Result<Bytes>>> reads;
  for (int i = 0; i < 8; ++i) {
    reads.push_back(sched.Get(0, 1, "k" + std::to_string(i)));
  }
  sim.Run();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(reads[i].ready());
    ASSERT_TRUE(reads[i].value().ok());
    EXPECT_TRUE(
        reads[i].value()->ContentEquals(Bytes::Synthetic(512, i)));
  }
  EXPECT_EQ(sched.stats().batches, 2u);
}

TEST(OpSchedulerTest, BatchCeilingSplitsLargeBursts) {
  sim::Simulation sim;
  net::FairShareNetwork network(sim, net::Das4Ipoib(2));
  kv::KvCluster cluster(sim, network, {0, 1});
  io::IoConfig config;
  config.max_batch_ops = 4;
  io::OpScheduler sched(sim, cluster, config);

  std::vector<sim::Future<Status>> writes;
  for (int i = 0; i < 10; ++i) {
    writes.push_back(sched.Set(0, 1, "k" + std::to_string(i),
                               Bytes::Synthetic(128, i)));
  }
  sim.Run();
  for (auto& f : writes) EXPECT_TRUE(f.value().ok());
  EXPECT_EQ(sched.stats().batched_ops, 10u);
  EXPECT_EQ(sched.stats().batches, 3u);  // 4 + 4 + 2
  EXPECT_EQ(sched.stats().max_batch, 4u);
}

TEST(OpSchedulerTest, BatchingOffIsPurePassthrough) {
  sim::Simulation sim;
  net::FairShareNetwork network(sim, net::Das4Ipoib(2));
  kv::KvCluster cluster(sim, network, {0, 1});
  io::IoConfig config;
  config.batching = false;
  io::OpScheduler sched(sim, cluster, config);

  std::vector<sim::Future<Status>> writes;
  for (int i = 0; i < 6; ++i) {
    writes.push_back(sched.Set(0, 1, "k" + std::to_string(i),
                               Bytes::Synthetic(128, i)));
  }
  sim.Run();
  for (auto& f : writes) EXPECT_TRUE(f.value().ok());
  EXPECT_EQ(sched.stats().passthrough_ops, 6u);
  EXPECT_EQ(sched.stats().batches, 0u);
  EXPECT_EQ(cluster.stats().single_rpcs, 6u);
  EXPECT_EQ(cluster.stats().batch_rpcs, 0u);
}

TEST(OpSchedulerTest, MixedKindsSplitIntoPerKindBatches) {
  // A DELETE between SETs never merges into the SET batch; the drain gathers
  // same-kind ops (across the gap — safe, no issuer keeps cross-kind ops in
  // flight for one key) and leaves the DELETE for its own round.
  sim::Simulation sim;
  net::FairShareNetwork network(sim, net::Das4Ipoib(2));
  kv::KvCluster cluster(sim, network, {0, 1});
  io::OpScheduler sched(sim, cluster);

  auto s1 = sched.Set(0, 1, "a", Bytes::Copy("1"));
  auto s2 = sched.Set(0, 1, "b", Bytes::Copy("2"));
  auto d1 = sched.Delete(0, 1, "c");
  auto s3 = sched.Set(0, 1, "d", Bytes::Copy("3"));
  sim.Run();
  EXPECT_TRUE(s1.value().ok());
  EXPECT_TRUE(s2.value().ok());
  EXPECT_EQ(d1.value().code(), ErrorCode::kNotFound);
  EXPECT_TRUE(s3.value().ok());
  // set{a,b,d} + delete{c}: two per-kind batches.
  EXPECT_EQ(sched.stats().batches, 2u);
  EXPECT_EQ(cluster.server(1).stats().sets, 3u);
  EXPECT_EQ(cluster.server(1).stats().deletes, 1u);
}

TEST(OpSchedulerTest, BatchedRunsAreDeterministic) {
  auto run = [] {
    sim::Simulation sim;
    net::FairShareNetwork network(sim, net::Das4Ipoib(4));
    kv::KvCluster cluster(sim, network, {0, 1, 2, 3});
    io::OpScheduler sched(sim, cluster);
    std::vector<sim::Future<Status>> writes;
    for (int i = 0; i < 24; ++i) {
      writes.push_back(sched.Set(i % 4, i % 3, "k" + std::to_string(i),
                                 Bytes::Synthetic(256 + 64 * (i % 5), i)));
    }
    sim.Run();
    std::vector<sim::Future<Result<Bytes>>> reads;
    for (int i = 0; i < 24; ++i) {
      reads.push_back(sched.Get((i + 1) % 4, i % 3, "k" + std::to_string(i)));
    }
    sim.Run();
    for (auto& f : writes) EXPECT_TRUE(f.value().ok());
    for (auto& f : reads) EXPECT_TRUE(f.value().ok());
    return sim.EventDigest();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace memfs
