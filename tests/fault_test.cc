// Tests for the deterministic fault-injection engine and the client-side
// retry/deadline/circuit-breaker layer: injector composition semantics,
// schedule determinism, message loss, slow servers vs op deadlines,
// wipe-on-restart, and a chaos soak that runs an Envelope-style workload
// through a seeded schedule of crashes and slowdowns with zero data loss.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "kvstore/kv_cluster.h"
#include "kvstore/membership.h"
#include "kvstore/migrator.h"
#include "memfs/memfs.h"
#include "net/fluid_network.h"
#include "sim/fault.h"
#include "test_util.h"
#include "workloads/testbed.h"

namespace memfs {
namespace {

using memfs::testing::Await;
using units::KiB;
using units::MiB;
using units::Millis;

// --- FaultInjector semantics (hooks recorded, no cluster involved) -------

struct HookLog {
  struct DownCall {
    sim::SimTime at;
    std::uint32_t server;
    bool down;
    bool wipe;
  };
  struct SlowCall {
    sim::SimTime at;
    std::uint32_t server;
    double factor;
  };
  std::vector<DownCall> down;
  std::vector<SlowCall> slow;
  std::vector<std::pair<double, sim::SimTime>> link_set;
  std::uint32_t link_clears = 0;
};

sim::FaultHooks RecordingHooks(sim::Simulation& sim, HookLog& log) {
  sim::FaultHooks hooks;
  hooks.set_server_down = [&sim, &log](std::uint32_t server, bool down,
                                       bool wipe) {
    log.down.push_back({sim.now(), server, down, wipe});
  };
  hooks.set_server_slowdown = [&sim, &log](std::uint32_t server,
                                           double factor) {
    log.slow.push_back({sim.now(), server, factor});
  };
  hooks.set_link_fault = [&log](std::uint32_t, std::uint32_t, double loss,
                                sim::SimTime extra) {
    log.link_set.emplace_back(loss, extra);
  };
  hooks.clear_link_fault = [&log](std::uint32_t, std::uint32_t) {
    ++log.link_clears;
  };
  return hooks;
}

TEST(FaultInjectorTest, AppliesAndRevertsOnSchedule) {
  sim::Simulation sim;
  HookLog log;
  sim::FaultInjector injector(sim, RecordingHooks(sim, log));

  sim::FaultEvent crash;
  crash.kind = sim::FaultKind::kServerCrash;
  crash.start = Millis(10);
  crash.duration = Millis(5);
  crash.server = 2;
  crash.wipe_on_restart = true;

  sim::FaultEvent slow;
  slow.kind = sim::FaultKind::kServerSlow;
  slow.start = Millis(20);
  slow.duration = Millis(4);
  slow.server = 1;
  slow.slow_factor = 8.0;

  sim::FaultEvent link;
  link.kind = sim::FaultKind::kLinkFault;
  link.start = Millis(30);
  link.duration = Millis(2);
  link.src = 0;
  link.dst = 3;
  link.loss_prob = 0.5;
  link.extra_latency = Millis(1);

  injector.ScheduleAll({crash, slow, link});
  EXPECT_EQ(injector.horizon(), Millis(32));
  sim.Run();

  ASSERT_EQ(log.down.size(), 2u);
  EXPECT_EQ(log.down[0].at, Millis(10));
  EXPECT_TRUE(log.down[0].down);
  EXPECT_FALSE(log.down[0].wipe);
  EXPECT_EQ(log.down[1].at, Millis(15));
  EXPECT_FALSE(log.down[1].down);
  EXPECT_TRUE(log.down[1].wipe);  // the wipe rides on the restart

  ASSERT_EQ(log.slow.size(), 2u);
  EXPECT_EQ(log.slow[0].factor, 8.0);
  EXPECT_EQ(log.slow[1].factor, 1.0);

  ASSERT_EQ(log.link_set.size(), 1u);
  EXPECT_DOUBLE_EQ(log.link_set[0].first, 0.5);
  EXPECT_EQ(log.link_set[0].second, Millis(1));
  EXPECT_EQ(log.link_clears, 1u);

  const auto& stats = injector.stats();
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.restarts, 1u);
  EXPECT_EQ(stats.wipes, 1u);
  EXPECT_EQ(stats.slow_starts, 1u);
  EXPECT_EQ(stats.slow_ends, 1u);
  EXPECT_EQ(stats.link_fault_starts, 1u);
  EXPECT_EQ(stats.link_fault_ends, 1u);
}

TEST(FaultInjectorTest, OverlappingCrashesAreRefcounted) {
  sim::Simulation sim;
  HookLog log;
  sim::FaultInjector injector(sim, RecordingHooks(sim, log));

  // [10, 30) keeps data; [15, 20) asks for a wipe. One down/up pair fires,
  // and the restart wipes because at least one overlapping episode asked.
  sim::FaultEvent a;
  a.kind = sim::FaultKind::kServerCrash;
  a.start = Millis(10);
  a.duration = Millis(20);
  a.server = 4;

  sim::FaultEvent b = a;
  b.start = Millis(15);
  b.duration = Millis(5);
  b.wipe_on_restart = true;

  injector.ScheduleAll({a, b});
  sim.Run();

  ASSERT_EQ(log.down.size(), 2u);
  EXPECT_EQ(log.down[0].at, Millis(10));
  EXPECT_TRUE(log.down[0].down);
  EXPECT_EQ(log.down[1].at, Millis(30));
  EXPECT_FALSE(log.down[1].down);
  EXPECT_TRUE(log.down[1].wipe);
  EXPECT_EQ(injector.stats().crashes, 2u);
  EXPECT_EQ(injector.stats().restarts, 1u);
  EXPECT_EQ(injector.stats().wipes, 1u);
}

TEST(FaultInjectorTest, OverlappingSlowEpisodesMultiply) {
  sim::Simulation sim;
  HookLog log;
  sim::FaultInjector injector(sim, RecordingHooks(sim, log));

  sim::FaultEvent a;
  a.kind = sim::FaultKind::kServerSlow;
  a.start = Millis(10);
  a.duration = Millis(30);
  a.server = 0;
  a.slow_factor = 2.0;

  sim::FaultEvent b = a;
  b.start = Millis(20);
  b.duration = Millis(10);
  b.slow_factor = 3.0;

  injector.ScheduleAll({a, b});
  sim.Run();

  ASSERT_EQ(log.slow.size(), 4u);
  EXPECT_DOUBLE_EQ(log.slow[0].factor, 2.0);  // a starts
  EXPECT_DOUBLE_EQ(log.slow[1].factor, 6.0);  // b stacks on a
  EXPECT_DOUBLE_EQ(log.slow[2].factor, 2.0);  // b ends
  EXPECT_DOUBLE_EQ(log.slow[3].factor, 1.0);  // a ends, healthy again
}

TEST(FaultInjectorTest, GeneratedScheduleIsDeterministicPerSeed) {
  sim::FaultScheduleConfig config;
  config.seed = 42;
  config.crashes = 4;
  config.slow_episodes = 3;
  config.link_faults = 2;

  const auto a = sim::GenerateFaultSchedule(config);
  const auto b = sim::GenerateFaultSchedule(config);
  ASSERT_EQ(a.size(), 9u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].start, b[i].start) << i;
    EXPECT_EQ(a[i].duration, b[i].duration) << i;
    EXPECT_EQ(a[i].server, b[i].server) << i;
    EXPECT_DOUBLE_EQ(a[i].slow_factor, b[i].slow_factor) << i;
    EXPECT_DOUBLE_EQ(a[i].loss_prob, b[i].loss_prob) << i;
    if (i > 0) {
      EXPECT_LE(a[i - 1].start, a[i].start) << "unsorted at " << i;
    }
  }

  config.seed = 43;
  const auto c = sim::GenerateFaultSchedule(config);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].start != c[i].start || a[i].server != c[i].server) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

// --- Overlap queries (the incident flight recorder's view) ---------------

TEST(FaultOverlapTest, HalfOpenIntervalBoundaries) {
  // One crash active over [100, 200).
  sim::FaultEvent crash;
  crash.kind = sim::FaultKind::kServerCrash;
  crash.start = 100;
  crash.duration = 100;
  crash.server = 3;
  const std::vector<sim::FaultEvent> events = {crash};

  // Query ending exactly at the fault's start does not overlap...
  EXPECT_TRUE(sim::OverlappingFaults(events, 0, 100).empty());
  // ...but one that includes the first active instant does.
  EXPECT_EQ(sim::OverlappingFaults(events, 0, 101).size(), 1u);
  // Query starting exactly at the fault's end (start + duration) misses it.
  EXPECT_TRUE(sim::OverlappingFaults(events, 200, 300).empty());
  // Query starting on the last active instant catches it.
  EXPECT_EQ(sim::OverlappingFaults(events, 199, 300).size(), 1u);
  // A window fully inside the episode overlaps.
  EXPECT_EQ(sim::OverlappingFaults(events, 140, 160).size(), 1u);
  // A window enclosing the episode overlaps.
  EXPECT_EQ(sim::OverlappingFaults(events, 0, 1000).size(), 1u);
}

TEST(FaultOverlapTest, FiltersAndPreservesScheduleOrder) {
  sim::FaultEvent early;   // [0, 50)
  early.start = 0;
  early.duration = 50;
  early.server = 0;
  sim::FaultEvent mid;     // [40, 120)
  mid.kind = sim::FaultKind::kServerSlow;
  mid.start = 40;
  mid.duration = 80;
  mid.server = 1;
  sim::FaultEvent late;    // [500, 600)
  late.kind = sim::FaultKind::kLinkFault;
  late.start = 500;
  late.duration = 100;
  const std::vector<sim::FaultEvent> events = {early, mid, late};

  const auto active = sim::OverlappingFaults(events, 45, 110);
  ASSERT_EQ(active.size(), 2u);
  EXPECT_EQ(active[0].server, 0u);
  EXPECT_EQ(active[1].server, 1u);
  EXPECT_TRUE(sim::OverlappingFaults(events, 120, 500).empty());
  // Empty query window [t, t) overlaps nothing.
  EXPECT_TRUE(sim::OverlappingFaults(events, 45, 45).empty());
}

TEST(FaultInjectorTest, ActiveFaultsReflectsScheduledEvents) {
  sim::Simulation sim;
  HookLog log;
  sim::FaultInjector injector(sim, RecordingHooks(sim, log));

  sim::FaultEvent crash;
  crash.kind = sim::FaultKind::kServerCrash;
  crash.start = 10;
  crash.duration = 20;  // [10, 30)
  crash.server = 2;
  sim::FaultEvent slow;
  slow.kind = sim::FaultKind::kServerSlow;
  slow.start = 25;
  slow.duration = 25;  // [25, 50)
  slow.server = 4;
  slow.slow_factor = 3.0;
  injector.ScheduleAll({crash, slow});
  sim.Run();

  ASSERT_EQ(injector.scheduled().size(), 2u);
  EXPECT_EQ(injector.ActiveFaults(0, 10).size(), 0u);
  EXPECT_EQ(injector.ActiveFaults(0, 11).size(), 1u);
  EXPECT_EQ(injector.ActiveFaults(26, 29).size(), 2u);
  EXPECT_EQ(injector.ActiveFaults(30, 50).size(), 1u);
  EXPECT_EQ(injector.ActiveFaults(50, 90).size(), 0u);
  // The query is read-only over the recorded schedule: it still answers
  // after the run, and repeated calls agree.
  EXPECT_EQ(injector.ActiveFaults(26, 29).size(), 2u);
}

// --- Client-side fault handling against a live cluster -------------------

class FaultClusterTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kNodes = 4;

  void Recreate(kv::KvClientPolicy policy) {
    storage_.reset();
    network_.reset();
    sim_ = std::make_unique<sim::Simulation>();
    network_ = std::make_unique<net::FairShareNetwork>(
        *sim_, net::Das4Ipoib(kNodes));
    storage_ = std::make_unique<kv::KvCluster>(
        *sim_, *network_, std::vector<net::NodeId>{0, 1, 2, 3},
        kv::KvServerConfig{}, kv::KvOpCostModel{}, nullptr, policy);
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<net::FairShareNetwork> network_;
  std::unique_ptr<kv::KvCluster> storage_;
};

TEST_F(FaultClusterTest, LostRequestsTimeOutAndRetrySucceeds) {
  Recreate({});
  ASSERT_TRUE(Await(*sim_, storage_->Set(0, 1, "k", Bytes::Copy("v"))).ok());

  // Total loss on the request leg: every attempt times out client-side.
  network_->SetLinkFault(0, 1, {1.0, 0});
  auto lost = Await(*sim_, storage_->Get(0, 1, "k"));
  EXPECT_EQ(lost.status().code(), ErrorCode::kDeadlineExceeded);
  EXPECT_GT(network_->dropped_messages(), 0u);
  EXPECT_GT(storage_->stats().retries, 0u);
  EXPECT_GT(storage_->stats().deadline_exceeded, 0u);

  // Healing the link heals the operation.
  network_->ClearLinkFault(0, 1);
  auto back = Await(*sim_, storage_->Get(0, 1, "k"));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ContentEquals(Bytes::Copy("v")));
}

TEST_F(FaultClusterTest, PartialLossIsAbsorbedByRetries) {
  kv::KvClientPolicy policy;
  policy.retry.max_attempts = 6;
  Recreate(policy);

  network_->SetLinkFault(0, 2, {0.5, 0});
  // Deterministic per seed: with six attempts per op, 32 sets through a
  // half-lossy link all land.
  for (int i = 0; i < 32; ++i) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(
        Await(*sim_, storage_->Set(0, 2, key, Bytes::Copy("v"))).ok())
        << key;
  }
  EXPECT_GT(network_->dropped_messages(), 0u);
  EXPECT_EQ(storage_->stats().retries, network_->dropped_messages());
}

TEST_F(FaultClusterTest, SlowServerTripsOpDeadline) {
  kv::KvClientPolicy policy;
  policy.op_deadline = Millis(1);
  Recreate(policy);
  ASSERT_TRUE(Await(*sim_, storage_->Set(0, 1, "k", Bytes::Copy("v"))).ok());

  storage_->SetServerSlowdown(1, 1e4);  // 5 us GET -> 50 ms, way past 1 ms
  auto slow = Await(*sim_, storage_->Get(0, 1, "k"));
  EXPECT_EQ(slow.status().code(), ErrorCode::kDeadlineExceeded);
  EXPECT_GT(storage_->stats().deadline_exceeded, 0u);

  storage_->SetServerSlowdown(1, 1.0);
  EXPECT_DOUBLE_EQ(storage_->ServerSlowdown(1), 1.0);
  auto back = Await(*sim_, storage_->Get(0, 1, "k"));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ContentEquals(Bytes::Copy("v")));
}

TEST_F(FaultClusterTest, CircuitBreakerOpensFastFailsAndRecovers) {
  kv::KvClientPolicy policy;
  policy.retry.max_attempts = 1;  // one failure per op, for exact counting
  policy.breaker.failure_threshold = 2;
  policy.breaker.open_duration = Millis(5);
  Recreate(policy);
  ASSERT_TRUE(Await(*sim_, storage_->Set(0, 1, "k", Bytes::Copy("v"))).ok());

  storage_->SetServerDown(1, true);
  for (int i = 0; i < 2; ++i) {
    auto r = Await(*sim_, storage_->Get(0, 1, "k"));
    EXPECT_EQ(r.status().code(), ErrorCode::kUnavailable);
  }
  EXPECT_EQ(storage_->BreakerState(1), CircuitBreaker::State::kOpen);
  EXPECT_EQ(storage_->stats().breaker_opens, 1u);

  // While open, requests are rejected instantly instead of eating the
  // 1 ms connection timeout.
  const auto t0 = sim_->now();
  auto rejected = Await(*sim_, storage_->Get(0, 1, "k"));
  EXPECT_EQ(rejected.status().code(), ErrorCode::kUnavailable);
  EXPECT_LT(sim_->now() - t0, Millis(1));
  EXPECT_GT(storage_->stats().breaker_fast_fails, 0u);

  // Server restarts; once the open period lapses, the half-open probe
  // succeeds and closes the breaker.
  storage_->SetServerDown(1, false);
  sim_->Schedule(Millis(6), [] {});
  sim_->Run();
  auto back = Await(*sim_, storage_->Get(0, 1, "k"));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ContentEquals(Bytes::Copy("v")));
  EXPECT_EQ(storage_->BreakerState(1), CircuitBreaker::State::kClosed);
}

TEST_F(FaultClusterTest, WipeOnRestartClearsData) {
  Recreate({});
  ASSERT_TRUE(
      Await(*sim_, storage_->Set(0, 1, "k", Bytes::Synthetic(KiB(4), 7)))
          .ok());
  ASSERT_GT(storage_->server(1).memory_used(), 0u);

  // Restart with data intact: the value survives.
  storage_->SetServerDown(1, true);
  storage_->SetServerDown(1, false);
  EXPECT_TRUE(Await(*sim_, storage_->Get(0, 1, "k")).ok());

  // Restart as an empty process: RAM is gone.
  storage_->SetServerDown(1, true);
  storage_->SetServerDown(1, false, /*wipe_on_restart=*/true);
  EXPECT_EQ(storage_->server(1).memory_used(), 0u);
  auto gone = Await(*sim_, storage_->Get(0, 1, "k"));
  EXPECT_EQ(gone.status().code(), ErrorCode::kNotFound);
}

// --- Chaos soak (the acceptance experiment) -------------------------------
//
// Envelope-style workload on 8 servers with replication 2 while a seeded
// schedule injects three transient crashes (wiping data on restart), two
// slow-server episodes and one lossy link. Crash victims {0, 2, 4} are
// pairwise non-adjacent on the placement ring and all episodes occupy
// disjoint time windows, so every stripe and record keeps at least one live
// replica at all times: the workload must lose nothing.

struct SoakCounters {
  std::uint32_t writes_ok = 0;
  std::uint32_t reads_intact = 0;
  std::uint64_t retries = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_fast_fails = 0;
  std::uint64_t degraded_writes = 0;
  std::uint64_t write_failovers = 0;
  std::uint64_t replica_failovers = 0;
  std::uint64_t read_repairs = 0;
  std::uint64_t dropped_messages = 0;
  std::uint64_t injector_events = 0;
  std::uint64_t wipes = 0;

  bool operator==(const SoakCounters&) const = default;
};

sim::Task RunSoakWrite(sim::Simulation& sim, fs::Vfs& vfs, sim::SimTime start,
                       std::uint32_t node, std::string path,
                       std::uint64_t seed, std::uint8_t& ok) {
  co_await sim.Delay(start);
  fs::VfsContext ctx{node, 0};
  auto created = co_await vfs.Create(ctx, path);
  if (!created.ok()) co_return;
  const Status wrote =
      co_await vfs.Write(ctx, created.value(), Bytes::Synthetic(MiB(1), seed));
  const Status closed = co_await vfs.Close(ctx, created.value());
  ok = wrote.ok() && closed.ok();
}

sim::Task RunSoakVerify(fs::Vfs& vfs, std::uint32_t node, std::string path,
                        std::uint64_t seed, std::uint8_t& intact) {
  fs::VfsContext ctx{node, 0};
  auto opened = co_await vfs.Open(ctx, path);
  if (!opened.ok()) co_return;
  Bytes out;
  while (true) {
    auto chunk = co_await vfs.Read(ctx, opened.value(), out.size(), MiB(1));
    if (!chunk.ok()) co_return;
    if (chunk->empty()) break;
    out.Append(*chunk);
  }
  (void)co_await vfs.Close(ctx, opened.value());
  intact = out.ContentEquals(Bytes::Synthetic(MiB(1), seed));
}

std::vector<sim::FaultEvent> SoakSchedule() {
  std::vector<sim::FaultEvent> events;
  for (std::uint32_t victim : {0u, 2u, 4u}) {
    sim::FaultEvent crash;
    crash.kind = sim::FaultKind::kServerCrash;
    crash.server = victim;
    crash.start = Millis(10 + victim * 10);  // 10, 30, 50 — disjoint windows
    crash.duration = Millis(12);
    crash.wipe_on_restart = true;
    events.push_back(crash);
  }
  for (std::uint32_t i = 0; i < 2; ++i) {
    sim::FaultEvent slow;
    slow.kind = sim::FaultKind::kServerSlow;
    slow.server = i == 0 ? 1 : 6;
    slow.start = i == 0 ? Millis(68) : Millis(84);
    slow.duration = Millis(12);
    slow.slow_factor = 500.0;  // ~90 us stripe SET -> ~45 ms, past deadline
    events.push_back(slow);
  }
  for (std::uint32_t src : {3u, 7u}) {
    sim::FaultEvent link;
    link.kind = sim::FaultKind::kLinkFault;
    link.src = src;
    link.dst = 5;
    link.start = Millis(5);
    link.duration = Millis(80);
    link.loss_prob = 0.5;
    events.push_back(link);
  }
  return events;
}

SoakCounters RunChaosSoak() {
  constexpr std::uint32_t kNodes = 8;
  constexpr std::uint32_t kFiles = 32;

  sim::Simulation sim;
  net::FairShareNetwork network(sim, net::Das4Ipoib(kNodes));

  kv::KvClientPolicy policy;
  policy.retry.max_attempts = 5;
  policy.op_deadline = Millis(20);

  std::vector<net::NodeId> server_nodes;
  for (std::uint32_t n = 0; n < kNodes; ++n) server_nodes.push_back(n);
  kv::KvCluster storage(sim, network, std::move(server_nodes),
                        kv::KvServerConfig{}, kv::KvOpCostModel{}, nullptr,
                        policy);
  fs::MemFsConfig config;
  config.replication = 2;
  fs::MemFs memfs(sim, network, storage, config);

  sim::FaultHooks hooks;
  hooks.set_server_down = [&storage](std::uint32_t server, bool down,
                                     bool wipe) {
    storage.SetServerDown(server, down, wipe);
  };
  hooks.set_server_slowdown = [&storage](std::uint32_t server, double factor) {
    storage.SetServerSlowdown(server, factor);
  };
  hooks.set_link_fault = [&network](std::uint32_t src, std::uint32_t dst,
                                    double loss, sim::SimTime extra) {
    network.SetLinkFault(src, dst, {loss, extra});
  };
  hooks.clear_link_fault = [&network](std::uint32_t src, std::uint32_t dst) {
    network.ClearLinkFault(src, dst);
  };
  sim::FaultInjector injector(sim, std::move(hooks));
  injector.ScheduleAll(SoakSchedule());

  // Write phase: one file every 3 ms from round-robin client nodes, so the
  // workload spans every fault window.
  std::vector<std::uint8_t> write_ok(kFiles, 0);
  for (std::uint32_t i = 0; i < kFiles; ++i) {
    RunSoakWrite(sim, memfs, Millis(3) * i, i % kNodes,
                 "/soak_" + std::to_string(i), 1000 + i, write_ok[i]);
  }
  sim.Run();  // drains the workload AND every fault apply/revert

  // Verify phase (cluster healthy again, but servers 0/2/4 restarted empty):
  // every byte must come back, via failover where the primary was wiped.
  std::vector<std::uint8_t> intact(kFiles, 0);
  for (std::uint32_t i = 0; i < kFiles; ++i) {
    RunSoakVerify(memfs, i % kNodes, "/soak_" + std::to_string(i), 1000 + i,
                  intact[i]);
  }
  sim.Run();

  SoakCounters counters;
  for (std::uint32_t i = 0; i < kFiles; ++i) {
    counters.writes_ok += write_ok[i];
    counters.reads_intact += intact[i];
  }
  counters.retries = storage.stats().retries;
  counters.deadline_exceeded = storage.stats().deadline_exceeded;
  counters.breaker_opens = storage.stats().breaker_opens;
  counters.breaker_fast_fails = storage.stats().breaker_fast_fails;
  counters.degraded_writes = memfs.stats().degraded_writes;
  counters.write_failovers = memfs.stats().write_failovers;
  counters.replica_failovers = memfs.stats().replica_failovers;
  counters.read_repairs = memfs.stats().read_repairs;
  counters.dropped_messages = network.dropped_messages();
  counters.injector_events = injector.stats().total_events();
  counters.wipes = injector.stats().wipes;
  return counters;
}

TEST(ChaosSoakTest, NoDataLossUnderCrashesSlowdownsAndLoss) {
  const SoakCounters counters = RunChaosSoak();

  // Zero data loss: every write acknowledged, every byte read back intact.
  EXPECT_EQ(counters.writes_ok, 32u);
  EXPECT_EQ(counters.reads_intact, 32u);

  // The faults actually happened and the recovery machinery actually ran.
  EXPECT_EQ(counters.wipes, 3u);
  EXPECT_EQ(counters.injector_events, 17u);  // 9 crash/restart/wipe+4 slow+4
  EXPECT_GT(counters.retries, 0u);
  EXPECT_GT(counters.deadline_exceeded, 0u);
  EXPECT_GT(counters.degraded_writes, 0u);
  EXPECT_GT(counters.replica_failovers, 0u);
  EXPECT_GT(counters.read_repairs, 0u);
  EXPECT_GT(counters.dropped_messages, 0u);
}

TEST(ChaosSoakTest, IdenticalSeedsProduceIdenticalRuns) {
  const SoakCounters first = RunChaosSoak();
  const SoakCounters second = RunChaosSoak();
  EXPECT_EQ(first, second);
}

// --- Migration chaos: crash the handoff's source / destination ------------
//
// A standby node joins a 4-server replication-2 cluster while writes are
// still landing; mid-handoff one end of the migration (a source server, or
// the joining destination itself) crashes and restarts. The cluster must
// stay fully readable throughout — no NOT_FOUND, no stale bytes — and the
// migrator must converge once the victim is back, because its sweeps are
// idempotent over whatever the crashed attempt left behind.

struct MigrationChaosOutcome {
  std::uint32_t writes_ok = 0;
  std::uint32_t reads_intact = 0;
  std::uint32_t live_reads = 0;      // verify passes while migration ran
  std::uint32_t live_not_found = 0;  // NOT_FOUND seen by the live reader
  std::uint32_t live_stale = 0;      // wrong bytes seen by the live reader
  std::uint8_t converged = 0;
  std::uint64_t failed_chunks = 0;
};

sim::Task RunMigrationChaosDriver(sim::Simulation& sim,
                                  kv::Membership& membership,
                                  kv::Migrator& migrator, std::uint8_t& done,
                                  std::uint8_t& converged) {
  co_await sim.Delay(Millis(4));
  (void)membership.BeginJoin(/*node=*/4);
  for (int runs = 0; membership.migrating() && runs < 32; ++runs) {
    (void)co_await migrator.Rebalance();
    co_await sim.Delay(Millis(1));
  }
  converged = !membership.migrating();
  done = 1;
}

// Re-reads one file in a loop until the driver finishes, classifying every
// completed pass: intact, NOT_FOUND, or stale/failed.
sim::Task RunLiveReader(sim::Simulation& sim, fs::Vfs& vfs, std::string path,
                        std::uint64_t seed, const std::uint8_t& ready,
                        const std::uint8_t& done,
                        MigrationChaosOutcome& outcome) {
  fs::VfsContext ctx{1, 0};
  while (done == 0) {
    co_await sim.Delay(Millis(2));
    if (ready == 0) continue;  // the writer has not closed the file yet
    auto opened = co_await vfs.Open(ctx, path);
    if (!opened.ok()) {
      if (opened.status().code() == ErrorCode::kNotFound) {
        ++outcome.live_not_found;
      }
      continue;
    }
    Bytes out;
    bool failed = false;
    bool not_found = false;
    while (true) {
      auto chunk = co_await vfs.Read(ctx, opened.value(), out.size(), MiB(1));
      if (!chunk.ok()) {
        failed = true;
        not_found = chunk.status().code() == ErrorCode::kNotFound;
        break;
      }
      if (chunk->empty()) break;
      out.Append(*chunk);
    }
    (void)co_await vfs.Close(ctx, opened.value());
    if (not_found) {
      ++outcome.live_not_found;
    } else if (failed || !out.ContentEquals(Bytes::Synthetic(MiB(1), seed))) {
      ++outcome.live_stale;
    } else {
      ++outcome.live_reads;
    }
  }
}

MigrationChaosOutcome RunMigrationChaos(bool kill_destination) {
  constexpr std::uint32_t kFiles = 12;

  workloads::TestbedConfig config;
  config.nodes = 4;
  config.standby_nodes = 1;
  config.elastic = true;
  config.memfs.replication = 2;
  config.memfs.use_ketama = true;
  config.kv_policy.retry.max_attempts = 5;
  config.kv_policy.op_deadline = Millis(20);
  workloads::Testbed bed(workloads::FsKind::kMemFs, config);
  sim::Simulation& sim = bed.simulation();

  // Live writes span the whole migration window (last one starts at 11 ms;
  // the join begins at 4 ms).
  std::vector<std::uint8_t> write_ok(kFiles, 0);
  for (std::uint32_t i = 0; i < kFiles; ++i) {
    RunSoakWrite(sim, bed.vfs(), Millis(1) * i, i % 4,
                 "/mig_" + std::to_string(i), 2000 + i, write_ok[i]);
  }

  MigrationChaosOutcome outcome;
  std::uint8_t done = 0;
  RunMigrationChaosDriver(sim, *bed.membership(), *bed.migrator(), done,
                          outcome.converged);
  RunLiveReader(sim, bed.vfs(), "/mig_0", 2000, write_ok[0], done, outcome);

  // Crash one end of the handoff mid-migration; restart with data intact
  // (the copies the crashed attempt did land stay put, so the resumed
  // sweeps must be idempotent over them).
  const std::uint32_t victim = kill_destination ? 4u : 0u;
  kv::KvCluster& storage = *bed.storage();
  sim.Schedule(Millis(5), [&storage, victim] {
    storage.SetServerDown(victim, true, /*wipe_on_restart=*/false);
  });
  sim.Schedule(Millis(13), [&storage, victim] {
    storage.SetServerDown(victim, false);
  });
  sim.Run();

  std::vector<std::uint8_t> intact(kFiles, 0);
  for (std::uint32_t i = 0; i < kFiles; ++i) {
    RunSoakVerify(bed.vfs(), i % 4, "/mig_" + std::to_string(i), 2000 + i,
                  intact[i]);
  }
  sim.Run();

  for (std::uint32_t i = 0; i < kFiles; ++i) {
    outcome.writes_ok += write_ok[i];
    outcome.reads_intact += intact[i];
  }
  outcome.failed_chunks = bed.migrator()->progress().failed_chunks;
  return outcome;
}

TEST(MigrationChaosTest, SourceCrashMidHandoffLosesNothingAndConverges) {
  const MigrationChaosOutcome outcome =
      RunMigrationChaos(/*kill_destination=*/false);
  EXPECT_EQ(outcome.writes_ok, 12u);
  EXPECT_EQ(outcome.reads_intact, 12u);
  EXPECT_TRUE(outcome.converged);
  EXPECT_GT(outcome.live_reads, 0u);
  EXPECT_EQ(outcome.live_not_found, 0u);
  EXPECT_EQ(outcome.live_stale, 0u);
}

TEST(MigrationChaosTest, DestinationCrashMidHandoffLosesNothingAndConverges) {
  const MigrationChaosOutcome outcome =
      RunMigrationChaos(/*kill_destination=*/true);
  EXPECT_EQ(outcome.writes_ok, 12u);
  EXPECT_EQ(outcome.reads_intact, 12u);
  EXPECT_TRUE(outcome.converged);
  EXPECT_GT(outcome.live_reads, 0u);
  EXPECT_EQ(outcome.live_not_found, 0u);
  EXPECT_EQ(outcome.live_stale, 0u);
}

}  // namespace
}  // namespace memfs
