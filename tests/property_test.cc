// Property-based sweeps across configuration matrices: file round trips for
// every combination of stripe size, distribution strategy and replication;
// payload algebra under random splits; network byte conservation; global
// determinism. These tests hammer invariants rather than single behaviours.
#include <gtest/gtest.h>

#include "common/retry.h"
#include "common/rng.h"
#include "common/units.h"
#include "kvstore/kv_cluster.h"
#include "memfs/memfs.h"
#include "net/fluid_network.h"
#include "test_util.h"

namespace memfs {
namespace {

using fs::MemFsConfig;
using fs::VfsContext;
using memfs::testing::Await;
using units::KiB;
using units::MiB;

// --- MemFS round-trip matrix -----------------------------------------------

struct RoundTripParam {
  std::uint64_t stripe_size;
  bool ketama;
  std::uint32_t replication;
};

class RoundTripMatrixTest : public ::testing::TestWithParam<RoundTripParam> {
 protected:
  static constexpr std::uint32_t kNodes = 5;

  RoundTripMatrixTest() : network_(sim_, net::Das4Ipoib(kNodes)) {
    storage_ = std::make_unique<kv::KvCluster>(
        sim_, network_, std::vector<net::NodeId>{0, 1, 2, 3, 4});
    MemFsConfig config;
    config.stripe_size = GetParam().stripe_size;
    config.use_ketama = GetParam().ketama;
    config.replication = GetParam().replication;
    fs_ = std::make_unique<fs::MemFs>(sim_, network_, *storage_, config);
  }

  sim::Simulation sim_;
  net::FairShareNetwork network_;
  std::unique_ptr<kv::KvCluster> storage_;
  std::unique_ptr<fs::MemFs> fs_;
};

TEST_P(RoundTripMatrixTest, WriteReadAcrossSizeBoundaries) {
  const std::uint64_t stripe = GetParam().stripe_size;
  // File sizes straddling every boundary the striper cares about.
  const std::uint64_t sizes[] = {0,          1,           stripe - 1,
                                 stripe,     stripe + 1,  2 * stripe,
                                 3 * stripe + stripe / 2};
  Rng rng(42);
  int index = 0;
  for (const std::uint64_t size : sizes) {
    const std::string path = "/f" + std::to_string(index++);
    const Bytes data = Bytes::Synthetic(size, size ^ 0xabcdef);

    // Write in randomized call sizes.
    auto created = Await(sim_, fs_->Create({0, 0}, path));
    ASSERT_TRUE(created.ok()) << path;
    std::uint64_t offset = 0;
    while (offset < size) {
      const std::uint64_t len = std::min<std::uint64_t>(
          rng.Range(1, stripe + stripe / 3), size - offset);
      ASSERT_TRUE(Await(sim_, fs_->Write({0, 0}, created.value(),
                                         data.Slice(offset, len)))
                      .ok());
      offset += len;
    }
    ASSERT_TRUE(Await(sim_, fs_->Close({0, 0}, created.value())).ok());

    // Read back from another node in a different randomized call pattern.
    auto opened = Await(sim_, fs_->Open({3, 0}, path));
    ASSERT_TRUE(opened.ok()) << path;
    Bytes out;
    while (true) {
      const std::uint64_t len = rng.Range(1, stripe * 2);
      auto chunk =
          Await(sim_, fs_->Read({3, 0}, opened.value(), out.size(), len));
      ASSERT_TRUE(chunk.ok()) << path;
      if (chunk->empty()) break;
      out.Append(*chunk);
      if (chunk->size() < len) break;
    }
    ASSERT_TRUE(Await(sim_, fs_->Close({3, 0}, opened.value())).ok());
    EXPECT_EQ(out.size(), size) << path;
    EXPECT_TRUE(out.ContentEquals(data)) << path;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigMatrix, RoundTripMatrixTest,
    ::testing::Values(RoundTripParam{KiB(4), false, 1},
                      RoundTripParam{KiB(64), false, 1},
                      RoundTripParam{KiB(512), false, 1},
                      RoundTripParam{MiB(2), false, 1},
                      RoundTripParam{KiB(512), true, 1},
                      RoundTripParam{KiB(64), true, 2},
                      RoundTripParam{KiB(512), false, 2},
                      RoundTripParam{KiB(512), true, 3}),
    [](const auto& info) {
      return "stripe" + std::to_string(info.param.stripe_size / 1024) +
             "k_" + (info.param.ketama ? "ketama" : "modulo") + "_r" +
             std::to_string(info.param.replication);
    });

// --- Payload algebra under random splits ------------------------------------

TEST(PayloadPropertyTest, RandomSplitReassemblyReal) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t size = 1 + rng.Below(5000);
    const Bytes whole = Bytes::Pattern(size, trial);
    Bytes rebuilt;
    std::size_t offset = 0;
    while (offset < size) {
      const std::size_t len = 1 + rng.Below(size - offset);
      rebuilt.Append(whole.Slice(offset, len));
      offset += len;
    }
    ASSERT_TRUE(rebuilt.ContentEquals(whole)) << "trial " << trial;
    ASSERT_EQ(rebuilt.view(), whole.view());
  }
}

TEST(PayloadPropertyTest, RandomSplitReassemblySynthetic) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t size = 1 + rng.Below(1 << 22);
    const Bytes whole = Bytes::Synthetic(size, trial * 31 + 1);
    Bytes rebuilt;
    std::size_t offset = 0;
    while (offset < size) {
      const std::size_t len = 1 + rng.Below(size - offset);
      rebuilt.Append(whole.Slice(offset, len));
      offset += len;
    }
    ASSERT_TRUE(rebuilt.ContentEquals(whole)) << "trial " << trial;
  }
}

TEST(PayloadPropertyTest, NestedSliceEqualsDirectSlice) {
  Rng rng(99);
  const Bytes whole = Bytes::Synthetic(1 << 20, 5);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t o1 = rng.Below(1 << 19);
    const std::size_t l1 = 1 + rng.Below((1 << 20) - o1);
    const std::size_t o2 = rng.Below(l1);
    const std::size_t l2 = 1 + rng.Below(l1 - o2);
    EXPECT_TRUE(whole.Slice(o1, l1).Slice(o2, l2).ContentEquals(
        whole.Slice(o1 + o2, l2)));
  }
}

// --- Network conservation ----------------------------------------------------

TEST(NetworkPropertyTest, ByteAccountingConserved) {
  Rng rng(3);
  sim::Simulation sim;
  net::FairShareNetwork network(sim, net::Das4Ipoib(6));
  std::uint64_t expected_total = 0;
  std::vector<std::uint64_t> sent(6, 0);
  std::vector<std::uint64_t> received(6, 0);
  for (int i = 0; i < 300; ++i) {
    const auto src = static_cast<net::NodeId>(rng.Below(6));
    const auto dst = static_cast<net::NodeId>(rng.Below(6));
    const std::uint64_t bytes = rng.Below(1 << 20);
    (void)network.Transfer(src, dst, bytes);
    expected_total += bytes;
    sent[src] += bytes;
    received[dst] += bytes;
  }
  sim.Run();
  EXPECT_EQ(network.total_bytes(), expected_total);
  std::uint64_t sum_sent = 0;
  std::uint64_t sum_received = 0;
  for (net::NodeId n = 0; n < 6; ++n) {
    EXPECT_EQ(network.bytes_sent(n), sent[n]);
    EXPECT_EQ(network.bytes_received(n), received[n]);
    sum_sent += sent[n];
    sum_received += received[n];
  }
  EXPECT_EQ(sum_sent, expected_total);
  EXPECT_EQ(sum_received, expected_total);
  EXPECT_EQ(network.active_flows(), 0u);
}

TEST(NetworkPropertyTest, FasterNicNeverSlower) {
  // Monotonicity: the same transfer schedule on a faster fabric finishes no
  // later.
  auto run = [](std::uint64_t nic) {
    sim::Simulation sim;
    auto config = net::Das4Ipoib(4);
    config.nic_bandwidth = nic;
    net::FairShareNetwork network(sim, config);
    Rng rng(17);
    for (int i = 0; i < 60; ++i) {
      (void)network.Transfer(static_cast<net::NodeId>(rng.Below(4)),
                             static_cast<net::NodeId>(rng.Below(4)),
                             rng.Below(1 << 22));
    }
    return sim.Run();
  };
  EXPECT_LE(run(units::GB(2)), run(units::GB(1)));
  EXPECT_LE(run(units::GB(1)), run(units::MB(125)));
}

// --- Whole-system determinism -------------------------------------------------

TEST(SystemDeterminismTest, FullStackRunsAreBitIdentical) {
  auto run = [] {
    sim::Simulation sim;
    net::FairShareNetwork network(sim, net::Das4Ipoib(4));
    kv::KvCluster storage(sim, network, {0, 1, 2, 3});
    fs::MemFs memfs(sim, network, storage, MemFsConfig{});
    for (int f = 0; f < 8; ++f) {
      [](fs::MemFs& fs, int id) -> sim::Task {
        const VfsContext ctx{static_cast<net::NodeId>(id % 4), 0};
        const std::string path = "/p" + std::to_string(id);
        auto created = co_await fs.Create(ctx, path);
        if (!created.ok()) co_return;
        (void)co_await fs.Write(ctx, created.value(),
                                Bytes::Synthetic(KiB(700), id));
        (void)co_await fs.Close(ctx, created.value());
        auto opened = co_await fs.Open(ctx, path);
        if (!opened.ok()) co_return;
        (void)co_await fs.Read(ctx, opened.value(), 0, KiB(700));
        (void)co_await fs.Close(ctx, opened.value());
      }(memfs, f);
    }
    sim.Run();
    return std::tuple{sim.now(), sim.events_processed(),
                      network.total_bytes(), storage.total_memory_used()};
  };
  EXPECT_EQ(run(), run());
}

// --- Retry backoff schedule ------------------------------------------------
//
// Invariants of the decorrelated-jitter retry schedule, across many seeds:
// bit-identical per seed, every backoff within [base, max_backoff], at most
// max_attempts - 1 backoffs, and the cumulative sleep never reaches the
// deadline budget.

TEST(RetryBackoffProperty, DeterministicBoundedAndWithinBudget) {
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.base_backoff = units::Micros(100);
  policy.max_backoff = units::Millis(5);
  policy.deadline_budget = units::Millis(12);

  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    // Worst case for the budget: every attempt fails instantly, so simulated
    // time advances only by the backoffs themselves.
    const auto run = [&policy](std::uint64_t s) {
      Rng rng(s);
      RetryState retry(policy, /*start_time=*/0);
      std::vector<std::uint64_t> sleeps;
      std::uint64_t now = 0;
      while (true) {
        const auto backoff = retry.NextBackoff(rng, now);
        if (!backoff.allowed) break;
        sleeps.push_back(backoff.nanos);
        now += backoff.nanos;
      }
      return std::pair{sleeps, now};
    };

    const auto [sleeps, total] = run(seed);
    EXPECT_EQ(sleeps, run(seed).first) << "seed " << seed;  // reproducible
    EXPECT_LE(sleeps.size(), policy.max_attempts - 1u) << "seed " << seed;
    EXPECT_LT(total, policy.deadline_budget) << "seed " << seed;
    for (const std::uint64_t nanos : sleeps) {
      EXPECT_GE(nanos, policy.base_backoff) << "seed " << seed;
      EXPECT_LE(nanos, policy.max_backoff) << "seed " << seed;
    }
  }
}

TEST(RetryBackoffProperty, UnlimitedBudgetExhaustsAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.deadline_budget = 0;  // unlimited
  Rng rng(7);
  RetryState retry(policy, 0);
  std::uint32_t backoffs = 0;
  std::uint64_t now = 0;
  while (true) {
    const auto backoff = retry.NextBackoff(rng, now);
    if (!backoff.allowed) break;
    ++backoffs;
    now += backoff.nanos;
  }
  // Attempts, not time, are the binding limit.
  EXPECT_EQ(backoffs, policy.max_attempts - 1u);
  EXPECT_EQ(retry.attempts_started(), policy.max_attempts);
}

}  // namespace
}  // namespace memfs
