// Shared helpers for driving simulated asynchronous APIs from gtest.
#pragma once

#include <gtest/gtest.h>

#include "sim/future.h"
#include "sim/simulation.h"

namespace memfs::testing {

// Runs the simulation until the future resolves (which, with no other live
// processes, means running the queue dry) and returns the value.
template <typename T>
T Await(sim::Simulation& sim, sim::Future<T> future) {
  sim.Run();
  EXPECT_TRUE(future.ready()) << "future never resolved (deadlock?)";
  return future.value();
}

}  // namespace memfs::testing
