// Runs the semantic analyzer (tools/analyze) over crafted in-memory
// translation units: every rule family gets a positive, a negative and a
// suppressed fixture, plus the cross-TU cases (lock-order cycle split over
// two files, held-reacquire through a call edge, transitive blocking and
// sink reachability).
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analyze/analyzer.h"
#include "lint.h"

namespace {

using memfs::analyze::Analyzer;
using memfs::lint::Finding;

std::vector<Finding> Analyze(
    const std::vector<std::pair<std::string, std::string>>& files,
    bool include_suppressed = false) {
  Analyzer analyzer;
  for (const auto& [path, contents] : files) {
    analyzer.AddSource(path, contents);
  }
  return analyzer.Run(include_suppressed);
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

const Finding* FindRule(const std::vector<Finding>& findings,
                        const std::string& rule) {
  for (const Finding& f : findings) {
    if (f.rule == rule) return &f;
  }
  return nullptr;
}

// --- lock-order -----------------------------------------------------------

TEST(AnalyzeLockOrderTest, CrossTuCycleNamesBothAcquisitionSites) {
  const std::string tu_a = R"cc(
    sim::Task LockAThenB(sim::Semaphore& alpha, sim::Semaphore& beta) {
      co_await alpha.Acquire();
      co_await beta.Acquire();
      beta.Release();
      alpha.Release();
    }
  )cc";
  const std::string tu_b = R"cc(
    sim::Task LockBThenA(sim::Semaphore& alpha, sim::Semaphore& beta) {
      co_await beta.Acquire();
      co_await alpha.Acquire();
      alpha.Release();
      beta.Release();
    }
  )cc";
  const auto findings =
      Analyze({{"deadlock_a.cc", tu_a}, {"deadlock_b.cc", tu_b}});
  ASSERT_EQ(CountRule(findings, "lock-order"), 1);
  const Finding* cycle = FindRule(findings, "lock-order");
  // The report must name the acquisition site on each edge — one per TU.
  EXPECT_NE(cycle->message.find("deadlock_a.cc:"), std::string::npos)
      << cycle->message;
  EXPECT_NE(cycle->message.find("deadlock_b.cc:"), std::string::npos)
      << cycle->message;
  EXPECT_NE(cycle->message.find("'alpha'"), std::string::npos);
  EXPECT_NE(cycle->message.find("'beta'"), std::string::npos);
}

TEST(AnalyzeLockOrderTest, ConsistentOrderAcrossTusIsClean) {
  const std::string tu_a = R"cc(
    sim::Task FirstUser(sim::Semaphore& alpha, sim::Semaphore& beta) {
      co_await alpha.Acquire();
      co_await beta.Acquire();
      beta.Release();
      alpha.Release();
    }
  )cc";
  const std::string tu_b = R"cc(
    sim::Task SecondUser(sim::Semaphore& alpha, sim::Semaphore& beta) {
      co_await alpha.Acquire();
      co_await beta.Acquire();
      beta.Release();
      alpha.Release();
    }
  )cc";
  const auto findings = Analyze({{"ok_a.cc", tu_a}, {"ok_b.cc", tu_b}});
  EXPECT_EQ(CountRule(findings, "lock-order"), 0);
}

// --- coroutine safety: await-held-lock ------------------------------------

TEST(AnalyzeAwaitHeldLockTest, AwaitUnderExclusiveLockIsFlagged) {
  const std::string tu = R"cc(
    sim::Task MoveKey(kv::HandoffGate& gate, sim::Simulation& sim) {
      co_await gate.Lock(key);
      co_await sim.Delay(10);
      gate.Unlock(key);
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze({{"g.cc", tu}}), "await-held-lock"), 1);
}

TEST(AnalyzeAwaitHeldLockTest, SharedWriterSectionIsNotExclusive) {
  const std::string tu = R"cc(
    sim::Task WriteKey(kv::HandoffGate& gate, sim::Simulation& sim) {
      co_await gate.EnterWriter(key);
      co_await sim.Delay(10);
      gate.ExitWriter(key);
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze({{"g.cc", tu}}), "await-held-lock"), 0);
}

TEST(AnalyzeAwaitHeldLockTest, SuppressionIsHonoredAndCounted) {
  const std::string tu = R"cc(
    sim::Task MoveKey(kv::HandoffGate& gate, sim::Simulation& sim) {
      co_await gate.Lock(key);
      // lint: allow(await-held-lock) exercising the gate on purpose
      co_await sim.Delay(10);
      gate.Unlock(key);
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze({{"g.cc", tu}}), "await-held-lock"), 0);
  const auto all = Analyze({{"g.cc", tu}}, /*include_suppressed=*/true);
  ASSERT_EQ(CountRule(all, "await-held-lock"), 1);
  EXPECT_TRUE(FindRule(all, "await-held-lock")->suppressed);
}

// --- coroutine safety: held-reacquire -------------------------------------

TEST(AnalyzeHeldReacquireTest, DirectDoubleAcquireIsFlagged) {
  const std::string tu = R"cc(
    sim::Task Doubled(sim::Semaphore& slots) {
      co_await slots.Acquire();
      co_await slots.Acquire();
      slots.Release();
      slots.Release();
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze({{"d.cc", tu}}), "held-reacquire"), 1);
}

TEST(AnalyzeHeldReacquireTest, ReacquireThroughCrossTuCallIsFlagged) {
  const std::string outer = R"cc(
    sim::Task Outer(sim::Semaphore& slots) {
      co_await slots.Acquire();
      co_await InnerStep(slots);
      slots.Release();
    }
  )cc";
  const std::string inner = R"cc(
    sim::Task InnerStep(sim::Semaphore& slots) {
      co_await slots.Acquire();
      slots.Release();
    }
  )cc";
  const auto findings =
      Analyze({{"outer.cc", outer}, {"inner.cc", inner}});
  ASSERT_EQ(CountRule(findings, "held-reacquire"), 1);
  const Finding* f = FindRule(findings, "held-reacquire");
  EXPECT_EQ(f->file, "outer.cc");
  // The message names the remote acquisition site.
  EXPECT_NE(f->message.find("inner.cc:"), std::string::npos) << f->message;
}

TEST(AnalyzeHeldReacquireTest, AcquireAfterReleaseIsClean) {
  const std::string tu = R"cc(
    sim::Task Sequential(sim::Semaphore& slots) {
      co_await slots.Acquire();
      slots.Release();
      co_await slots.Acquire();
      slots.Release();
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze({{"s.cc", tu}}), "held-reacquire"), 0);
}

// --- coroutine safety: locked-return --------------------------------------

TEST(AnalyzeLockedReturnTest, EarlyReturnWhileHeldIsFlagged) {
  const std::string tu = R"cc(
    sim::Task Leaky(sim::Semaphore& slots, bool bail) {
      co_await slots.Acquire();
      if (bail) co_return;
      slots.Release();
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze({{"l.cc", tu}}), "locked-return"), 1);
}

TEST(AnalyzeLockedReturnTest, ReleaseOnEveryPathIsClean) {
  const std::string tu = R"cc(
    sim::Task Tidy(sim::Semaphore& slots, bool bail) {
      co_await slots.Acquire();
      if (bail) {
        slots.Release();
        co_return;
      }
      slots.Release();
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze({{"t.cc", tu}}), "locked-return"), 0);
}

// --- coroutine safety: blocking-call --------------------------------------

TEST(AnalyzeBlockingCallTest, DirectWallClockSleepInCoroutine) {
  const std::string tu = R"cc(
    sim::Task Stalls(sim::Simulation& sim) {
      co_await sim.Delay(1);
      std::this_thread::sleep_for(std::chrono::seconds(1));
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze({{"b.cc", tu}}), "blocking-call"), 1);
}

TEST(AnalyzeBlockingCallTest, TransitiveBlockingThroughHelperTu) {
  const std::string helper = R"cc(
    void SpinDown() {
      std::this_thread::sleep_for(std::chrono::seconds(1));
    }
  )cc";
  const std::string coro = R"cc(
    sim::Task Stalls(sim::Simulation& sim) {
      co_await sim.Delay(1);
      SpinDown();
    }
  )cc";
  const auto findings = Analyze({{"helper.cc", helper}, {"coro.cc", coro}});
  ASSERT_EQ(CountRule(findings, "blocking-call"), 1);
  const Finding* f = FindRule(findings, "blocking-call");
  EXPECT_EQ(f->file, "coro.cc");
  EXPECT_NE(f->message.find("helper.cc:"), std::string::npos) << f->message;
}

TEST(AnalyzeBlockingCallTest, SimulatedDelayIsClean) {
  const std::string tu = R"cc(
    sim::Task Waits(sim::Simulation& sim) {
      co_await sim.Delay(1);
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze({{"w.cc", tu}}), "blocking-call"), 0);
}

// --- determinism: unordered-sink ------------------------------------------

TEST(AnalyzeUnorderedSinkTest, UnorderedIterationFeedingDigestIsFlagged) {
  const std::string tu = R"cc(
    std::unordered_map<std::string, int> counters;
    void Emit(Bytes& digest) {
      for (const auto& kv : counters) {
        digest.Append(kv.first);
      }
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze({{"u.cc", tu}}), "unordered-sink"), 1);
}

TEST(AnalyzeUnorderedSinkTest, CoAwaitInsideUnorderedLoopIsASink) {
  const std::string tu = R"cc(
    std::unordered_set<std::string> peers;
    sim::Task Broadcast(Cluster& cluster) {
      for (const auto& peer : peers) {
        co_await cluster.Ping(peer);
      }
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze({{"p.cc", tu}}), "unordered-sink"), 1);
}

TEST(AnalyzeUnorderedSinkTest, SinkReachedThroughOneCallIsFlagged) {
  const std::string helper = R"cc(
    void Record(Bytes& digest, const std::string& key) {
      digest.Append(key);
    }
  )cc";
  const std::string loop = R"cc(
    std::unordered_map<std::string, int> counters;
    void Emit(Bytes& digest) {
      for (const auto& kv : counters) {
        Record(digest, kv.first);
      }
    }
  )cc";
  const auto findings = Analyze({{"rec.cc", helper}, {"emit.cc", loop}});
  EXPECT_EQ(CountRule(findings, "unordered-sink"), 1);
}

TEST(AnalyzeUnorderedSinkTest, PureAggregationOverUnorderedIsClean) {
  const std::string tu = R"cc(
    std::unordered_map<std::string, int> counters;
    int Total() {
      int sum = 0;
      for (const auto& kv : counters) {
        sum += kv.second;
      }
      return sum;
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze({{"t.cc", tu}}), "unordered-sink"), 0);
}

TEST(AnalyzeUnorderedSinkTest, OrderedMapFeedingDigestIsClean) {
  const std::string tu = R"cc(
    std::map<std::string, int> counters;
    void Emit(Bytes& digest) {
      for (const auto& kv : counters) {
        digest.Append(kv.first);
      }
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze({{"m.cc", tu}}), "unordered-sink"), 0);
}

TEST(AnalyzeUnorderedSinkTest, SuppressionIsHonored) {
  const std::string tu = R"cc(
    std::unordered_map<std::string, int> counters;
    void Emit(Bytes& digest) {
      // lint: allow(unordered-sink) digest is order-insensitive here
      for (const auto& kv : counters) {
        digest.Append(kv.first);
      }
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze({{"u.cc", tu}}), "unordered-sink"), 0);
  EXPECT_EQ(CountRule(Analyze({{"u.cc", tu}}, true), "unordered-sink"), 1);
}

// Regression fixture for the FluidNetwork::Reallocate() hazard removed by
// the slot-vector refactor (ISSUE 9): per-flow rate recomputation iterating
// a std::unordered_map of active flows. The historical code escaped this
// rule only because the loop body was a pure per-flow write whose consumers
// (the min() in the completion rescheduling) were order-independent; the
// moment the rescheduling call is reachable from the loop body — the
// natural next edit — the iteration order becomes part of the event stream.
// This fixture pins that shape as flagged, one call deep, cross-TU.
TEST(AnalyzeUnorderedSinkTest, FlowMapIterationReachingRescheduleIsFlagged) {
  const std::string sched = R"cc(
    void ScheduleNextCompletion(sim::Simulation& sim, double eta) {
      sim.ScheduleAt(eta, FinishDueFlows);
    }
  )cc";
  const std::string net = R"cc(
    std::unordered_map<std::uint64_t, Flow> active_;
    void Reallocate(sim::Simulation& sim) {
      for (auto& [id, flow] : active_) {
        flow.rate = ShareOf(flow);
        ScheduleNextCompletion(sim, flow.remaining / flow.rate);
      }
    }
  )cc";
  const auto findings = Analyze({{"sched.cc", sched}, {"net.cc", net}});
  ASSERT_EQ(CountRule(findings, "unordered-sink"), 1);
  const Finding* f = FindRule(findings, "unordered-sink");
  EXPECT_EQ(f->file, "net.cc");
  EXPECT_NE(f->message.find("ScheduleNextCompletion"), std::string::npos)
      << f->message;
}

// The post-refactor shape — the same recomputation walking a dense slot
// vector — is clean even with the rescheduling call in the loop body:
// vector iteration order is deterministic.
TEST(AnalyzeUnorderedSinkTest, SlotVectorReallocateIsClean) {
  const std::string sched = R"cc(
    void ScheduleNextCompletion(sim::Simulation& sim, double eta) {
      sim.ScheduleAt(eta, FinishDueFlows);
    }
  )cc";
  const std::string net = R"cc(
    std::vector<SlotId> active_slots_;
    void Reallocate(sim::Simulation& sim) {
      for (const SlotId slot : active_slots_) {
        Flow& flow = flows_[slot];
        flow.rate = ShareOf(flow);
        ScheduleNextCompletion(sim, flow.remaining / flow.rate);
      }
    }
  )cc";
  const auto findings = Analyze({{"sched.cc", sched}, {"net.cc", net}});
  EXPECT_EQ(CountRule(findings, "unordered-sink"), 0);
}

// --- determinism: pointer-order -------------------------------------------

TEST(AnalyzePointerOrderTest, DefaultComparatorSortOfPointersIsFlagged) {
  const std::string tu = R"cc(
    std::vector<Widget*> widgets;
    void Arrange() {
      std::sort(widgets.begin(), widgets.end());
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze({{"w.cc", tu}}), "pointer-order"), 1);
}

TEST(AnalyzePointerOrderTest, CustomComparatorIsClean) {
  const std::string tu = R"cc(
    std::vector<Widget*> widgets;
    void Arrange() {
      std::sort(widgets.begin(), widgets.end(), ByStableId{});
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze({{"w.cc", tu}}), "pointer-order"), 0);
}

TEST(AnalyzePointerOrderTest, IterationOverPointerKeyedMapIsFlagged) {
  const std::string tu = R"cc(
    std::map<Widget*, int> ranks;
    void Walk(Bytes& digest) {
      for (const auto& kv : ranks) {
        digest.Append(kv.second);
      }
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze({{"r.cc", tu}}), "pointer-order"), 1);
}

TEST(AnalyzePointerOrderTest, PointerContainerNamesAreScopedPerTu) {
  // `all` is a pointer container in one TU and a string container in
  // another; only the former's sort may be flagged.
  const std::string ptr_tu = R"cc(
    std::vector<Widget*> all;
    void ArrangePtrs() { std::sort(all.begin(), all.end()); }
  )cc";
  const std::string str_tu = R"cc(
    std::vector<std::string> all;
    void ArrangeStrings() { std::sort(all.begin(), all.end()); }
  )cc";
  const auto findings = Analyze({{"ptr.cc", ptr_tu}, {"str.cc", str_tu}});
  ASSERT_EQ(CountRule(findings, "pointer-order"), 1);
  EXPECT_EQ(FindRule(findings, "pointer-order")->file, "ptr.cc");
}

// --- status-flow ----------------------------------------------------------

TEST(AnalyzeStatusFlowTest, AssignedButNeverCheckedIsFlagged) {
  const std::string tu = R"cc(
    Status DoWork();
    void Caller() {
      Status st = DoWork();
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze({{"s.cc", tu}}), "status-flow"), 1);
}

TEST(AnalyzeStatusFlowTest, AutoDeclFromStatusReturningCalleeIsFlagged) {
  const std::string tu = R"cc(
    Status DoWork();
    sim::Task Caller() {
      auto rc = co_await DoWork();
      co_return;
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze({{"a.cc", tu}}), "status-flow"), 1);
}

TEST(AnalyzeStatusFlowTest, CheckedStatusIsClean) {
  const std::string tu = R"cc(
    Status DoWork();
    void Caller() {
      Status st = DoWork();
      if (!st.ok()) return;
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze({{"s.cc", tu}}), "status-flow"), 0);
}

TEST(AnalyzeStatusFlowTest, SuppressionIsHonored) {
  const std::string tu = R"cc(
    Status DoWork();
    void Caller() {
      // lint: allow(status-flow) best-effort cleanup
      Status st = DoWork();
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze({{"s.cc", tu}}), "status-flow"), 0);
}

// --- stats ----------------------------------------------------------------

TEST(AnalyzeStatsTest, CountsFunctionsCoroutinesAndFindings) {
  const std::string tu = R"cc(
    void Plain() {}
    sim::Task Coro(sim::Semaphore& slots, bool bail) {
      co_await slots.Acquire();
      if (bail) co_return;
      slots.Release();
    }
  )cc";
  Analyzer analyzer;
  analyzer.AddSource("s.cc", tu);
  const auto findings = analyzer.Run();
  EXPECT_EQ(CountRule(findings, "locked-return"), 1);
  const memfs::analyze::Stats& stats = analyzer.stats();
  EXPECT_EQ(stats.files, 1);
  EXPECT_EQ(stats.functions, 2);
  EXPECT_EQ(stats.coroutines, 1);
  EXPECT_EQ(stats.lock_sites, 1);
  EXPECT_EQ(stats.findings.at("locked-return"), 1);
  const std::string text = memfs::analyze::FormatStats(stats);
  EXPECT_NE(text.find("1 TU(s)"), std::string::npos) << text;
  EXPECT_NE(text.find("locked-return: 1 finding(s)"), std::string::npos)
      << text;
}

// --- shared suppression registry ------------------------------------------

TEST(AnalyzeSuppressionRegistryTest, LintAcceptsAnalyzerRuleNames) {
  // The linter and the analyzer share one known-rule registry
  // (tools/lexer.cc); a suppression naming an analyzer rule must not trip
  // lint's allow-unknown audit.
  memfs::lint::Linter linter;
  linter.AddSource("x.cc",
                   "// lint: allow(await-held-lock) reason\n"
                   "int x;\n");
  EXPECT_EQ(CountRule(linter.Run(), "allow-unknown"), 0);
}

TEST(AnalyzeSuppressionRegistryTest, UnknownRuleAuditNamesTheValidSet) {
  memfs::lint::Linter linter;
  linter.AddSource("x.cc",
                   "// lint: allow(not-a-rule) reason\n"
                   "int x;\n");
  const auto findings = linter.Run();
  ASSERT_EQ(CountRule(findings, "allow-unknown"), 1);
  const Finding* f = FindRule(findings, "allow-unknown");
  // The audit message lists every valid rule, linter and analyzer alike.
  EXPECT_NE(f->message.find("lock-order"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("ignored-status"), std::string::npos)
      << f->message;
}

}  // namespace
