// End-to-end integration: full Montage/BLAST workflows executed through both
// file systems on a simulated cluster, plus the MTC-Envelope engine. These
// tests assert the paper's qualitative claims at small scale — every byte of
// every intermediate file is content-verified along the way.
#include <gtest/gtest.h>

#include "amfs/amfs.h"
#include "common/stats.h"
#include "common/units.h"
#include "kvstore/kv_cluster.h"
#include "memfs/memfs.h"
#include "mtc/runner.h"
#include "mtc/scheduler.h"
#include "net/fluid_network.h"
#include "workloads/blast.h"
#include "workloads/envelope.h"
#include "workloads/montage.h"

namespace memfs {
namespace {

using units::GiB;
using units::KiB;
using units::MiB;

struct MemFsStack {
  MemFsStack(std::uint32_t nodes, fs::MemFsConfig config = {})
      : network(sim, net::Das4Ipoib(nodes)) {
    std::vector<net::NodeId> ids;
    for (std::uint32_t n = 0; n < nodes; ++n) ids.push_back(n);
    storage = std::make_unique<kv::KvCluster>(sim, network, ids);
    memfs = std::make_unique<fs::MemFs>(sim, network, *storage, config);
  }
  sim::Simulation sim;
  net::FairShareNetwork network;
  std::unique_ptr<kv::KvCluster> storage;
  std::unique_ptr<fs::MemFs> memfs;
};

struct AmfsStack {
  AmfsStack(std::uint32_t nodes, amfs::AmfsConfig config = {})
      : network(sim, net::Das4Ipoib(nodes)) {
    fs = std::make_unique<amfs::Amfs>(sim, network, config);
  }
  sim::Simulation sim;
  net::FairShareNetwork network;
  std::unique_ptr<amfs::Amfs> fs;
};

workloads::MontageParams SmallMontage() {
  workloads::MontageParams params;
  params.degree = 6;
  params.task_scale = 64;   // ~38 images
  params.size_scale = 16;   // ~128-256 KB files
  params.project_cpu_s = 1.0;
  return params;
}

TEST(IntegrationTest, MontageRunsOnMemFs) {
  MemFsStack stack(4);
  mtc::UniformScheduler scheduler;
  mtc::Runner runner(stack.sim, *stack.memfs, scheduler,
                     {.nodes = 4, .cores_per_node = 4, .io_block = KiB(128)});
  const auto result = runner.Run(workloads::BuildMontage(SmallMontage()));
  ASSERT_TRUE(result.status.ok()) << result.status << " in "
                                  << result.failed_task;
  EXPECT_GT(result.MakespanSeconds(), 0.0);
  EXPECT_GT(result.bytes_written, 0u);
  // All paper stages appear in the run.
  for (const char* stage : {"stage_in", "mProjectPP", "mImgTbl", "mDiffFit",
                            "mConcatFit", "mBgModel", "mBackground", "mAdd"}) {
    EXPECT_NE(result.Stage(stage), nullptr) << stage;
  }
}

TEST(IntegrationTest, MontageRunsOnAmfs) {
  AmfsStack stack(4);
  mtc::LocalityScheduler scheduler(*stack.fs);
  mtc::Runner runner(stack.sim, *stack.fs, scheduler,
                     {.nodes = 4, .cores_per_node = 4, .io_block = KiB(128)});
  const auto result = runner.Run(workloads::BuildMontage(SmallMontage()));
  ASSERT_TRUE(result.status.ok()) << result.status << " in "
                                  << result.failed_task;
}

TEST(IntegrationTest, MemFsBalancedAmfsImbalanced) {
  // The central storage-distribution claim: MemFS spreads bytes evenly;
  // AMFS concentrates them (aggregation node + replication).
  MemFsStack mem(4);
  {
    mtc::UniformScheduler scheduler;
    mtc::Runner runner(mem.sim, *mem.memfs, scheduler,
                       {.nodes = 4, .cores_per_node = 4,
                        .io_block = KiB(128)});
    ASSERT_TRUE(runner.Run(workloads::BuildMontage(SmallMontage())).status.ok());
  }
  RunningStats memfs_balance;
  for (std::uint32_t s = 0; s < 4; ++s) {
    memfs_balance.Add(
        static_cast<double>(mem.storage->server(s).memory_used()));
  }

  AmfsStack am(4);
  {
    mtc::LocalityScheduler scheduler(*am.fs);
    mtc::Runner runner(am.sim, *am.fs, scheduler,
                       {.nodes = 4, .cores_per_node = 4,
                        .io_block = KiB(128)});
    ASSERT_TRUE(runner.Run(workloads::BuildMontage(SmallMontage())).status.ok());
  }
  RunningStats amfs_balance;
  for (std::uint32_t n = 0; n < 4; ++n) {
    amfs_balance.Add(static_cast<double>(am.fs->node_memory_used(n)));
  }

  EXPECT_LT(memfs_balance.cv(), 0.2);
  EXPECT_GT(amfs_balance.cv(), memfs_balance.cv() * 2);
  // Replication inflates AMFS aggregate memory above the workflow's data.
  EXPECT_GT(am.fs->total_memory_used(), mem.storage->total_memory_used());
}

TEST(IntegrationTest, AmfsRunsOutOfMemoryOnLargeWorkflow) {
  // Montage 12 on AMFS: the aggregation node exhausts its memory (the paper
  // could not run 12x12 on AMFS at all). MemFS with the same per-node budget
  // completes because stripes spread over all nodes.
  workloads::MontageParams params;
  params.degree = 6;
  params.task_scale = 32;  // ~77 images
  params.size_scale = 8;   // ~256-512 KB files; ~90 MB total data
  params.project_cpu_s = 0.5;

  const std::uint64_t node_budget = MiB(48);

  amfs::AmfsConfig amfs_config;
  amfs_config.node_memory_limit = node_budget;
  AmfsStack am(4, amfs_config);
  mtc::LocalityScheduler locality(*am.fs);
  mtc::Runner amfs_runner(am.sim, *am.fs, locality,
                          {.nodes = 4, .cores_per_node = 4,
                           .io_block = KiB(256)});
  const auto amfs_result = amfs_runner.Run(workloads::BuildMontage(params));
  EXPECT_FALSE(amfs_result.status.ok());
  EXPECT_EQ(amfs_result.status.code(), ErrorCode::kNoSpace);

  MemFsStack mem(4);
  // Same per-node budget for the kv servers.
  kv::KvServerConfig server_config;
  server_config.memory_limit = node_budget;
  mem.storage.reset();
  mem.storage = std::make_unique<kv::KvCluster>(mem.sim, mem.network,
                                                std::vector<net::NodeId>{0, 1,
                                                                         2, 3},
                                                server_config);
  mem.memfs = std::make_unique<fs::MemFs>(mem.sim, mem.network, *mem.storage,
                                          fs::MemFsConfig{});
  mtc::UniformScheduler uniform;
  mtc::Runner memfs_runner(mem.sim, *mem.memfs, uniform,
                           {.nodes = 4, .cores_per_node = 4,
                            .io_block = KiB(256)});
  const auto memfs_result = memfs_runner.Run(workloads::BuildMontage(params));
  EXPECT_TRUE(memfs_result.status.ok()) << memfs_result.status;
}

TEST(IntegrationTest, BlastRunsOnBothFileSystems) {
  workloads::BlastParams params;
  params.fragments = 512;
  params.task_scale = 64;       // 8 fragments
  params.size_scale = 256;      // ~440 KB fragments
  params.queries_per_fragment = 2;
  params.formatdb_cpu_s = 2.0;
  params.blastall_cpu_s = 1.0;

  MemFsStack mem(4);
  mtc::UniformScheduler uniform;
  mtc::Runner mem_runner(mem.sim, *mem.memfs, uniform,
                         {.nodes = 4, .cores_per_node = 2,
                          .io_block = KiB(256)});
  const auto mem_result = mem_runner.Run(workloads::BuildBlast(params));
  ASSERT_TRUE(mem_result.status.ok()) << mem_result.status;
  EXPECT_NE(mem_result.Stage("blastall"), nullptr);

  AmfsStack am(4);
  mtc::LocalityScheduler locality(*am.fs);
  mtc::Runner am_runner(am.sim, *am.fs, locality,
                        {.nodes = 4, .cores_per_node = 2,
                         .io_block = KiB(256)});
  const auto am_result = am_runner.Run(workloads::BuildBlast(params));
  ASSERT_TRUE(am_result.status.ok()) << am_result.status;
}

TEST(IntegrationTest, MemFsFasterThanAmfsOnDiffFit) {
  // mDiffFit reads two inputs; AMFS can serve at most one locally. The
  // paper's central performance claim, at toy scale.
  auto montage = SmallMontage();

  MemFsStack mem(4);
  mtc::UniformScheduler uniform;
  mtc::Runner mem_runner(mem.sim, *mem.memfs, uniform,
                         {.nodes = 4, .cores_per_node = 4,
                          .io_block = KiB(128)});
  const auto mem_result = mem_runner.Run(workloads::BuildMontage(montage));
  ASSERT_TRUE(mem_result.status.ok());

  AmfsStack am(4);
  mtc::LocalityScheduler locality(*am.fs);
  mtc::Runner am_runner(am.sim, *am.fs, locality,
                        {.nodes = 4, .cores_per_node = 4,
                         .io_block = KiB(128)});
  const auto am_result = am_runner.Run(workloads::BuildMontage(montage));
  ASSERT_TRUE(am_result.status.ok());

  EXPECT_LT(mem_result.MakespanSeconds(), am_result.MakespanSeconds());
}

// --- Envelope engine ---

TEST(EnvelopeTest, MemFsPhasesProduceSaneNumbers) {
  MemFsStack stack(4);
  workloads::EnvelopeParams params;
  params.nodes = 4;
  params.file_size = MiB(1);
  params.files_per_proc = 3;
  workloads::EnvelopeBench bench(stack.sim, *stack.memfs, params);

  const auto write = bench.RunWrite();
  EXPECT_EQ(write.bytes, MiB(1) * 12);
  EXPECT_GT(write.BandwidthMBps(), 0.0);

  const auto read11 = bench.RunRead11();
  EXPECT_EQ(read11.bytes, MiB(1) * 12);
  EXPECT_GT(read11.BandwidthMBps(), write.BandwidthMBps() * 0.2);

  const auto readn1 = bench.RunReadN1();
  EXPECT_EQ(readn1.bytes, MiB(1) * 4);

  const auto create = bench.RunCreate(8);
  EXPECT_EQ(create.ops, 32u);
  EXPECT_GT(create.OpsPerSec(), 0.0);
  const auto open = bench.RunOpen();
  EXPECT_EQ(open.ops, 32u);
  // MemFS open beats create (get vs add+append, §4.1).
  EXPECT_GT(open.OpsPerSec(), create.OpsPerSec());
}

TEST(EnvelopeTest, AmfsMulticastPattern) {
  AmfsStack stack(4);
  workloads::EnvelopeParams params;
  params.nodes = 4;
  params.file_size = MiB(1);
  params.files_per_proc = 2;
  workloads::EnvelopeBench bench(stack.sim, *stack.fs, params,
                                 stack.fs.get());
  (void)bench.RunWrite();
  const auto readn1 = bench.RunReadN1();
  // Multicast dominates: bandwidth span is longer than the local-read span.
  EXPECT_GT(readn1.span, readn1.work_span);
  // Throughput (local reads after multicast) is much faster than the
  // bandwidth including the multicast.
  EXPECT_GT(readn1.WorkBandwidthMBps(), readn1.BandwidthMBps());
}

TEST(EnvelopeTest, AmfsRemoteReadPenalty) {
  AmfsStack stack(4);
  workloads::EnvelopeParams params;
  params.nodes = 4;
  params.file_size = MiB(1);
  params.files_per_proc = 2;
  workloads::EnvelopeBench bench(stack.sim, *stack.fs, params,
                                 stack.fs.get());
  (void)bench.RunWrite();
  const auto local = bench.RunRead11(0);   // locality achieved
  // NOTE: after the local pass every file has replicas only at its writer,
  // so a shifted pass is a true remote read.
  const auto remote = bench.RunRead11(1);  // locality lost
  EXPECT_GT(local.BandwidthMBps(), remote.BandwidthMBps() * 2);
}

TEST(EnvelopeTest, DeterministicAcrossRuns) {
  auto run = [] {
    MemFsStack stack(2);
    workloads::EnvelopeParams params;
    params.nodes = 2;
    params.file_size = KiB(256);
    params.files_per_proc = 2;
    workloads::EnvelopeBench bench(stack.sim, *stack.memfs, params);
    const auto write = bench.RunWrite();
    const auto read = bench.RunRead11();
    return std::pair{write.span, read.span};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace memfs
