// Tests for the latency instrumentation: histogram math, registry, and
// end-to-end recording through the MemFS data path; plus the Flush API.
#include <sstream>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/units.h"
#include "test_util.h"
#include "workloads/envelope.h"
#include "workloads/testbed.h"

namespace memfs {
namespace {

using memfs::testing::Await;
using units::KiB;
using units::MiB;

// --- LatencyHistogram ---

TEST(LatencyHistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.MeanNanos(), 0.0);
  EXPECT_DOUBLE_EQ(h.PercentileNanos(0.5), 0.0);
}

TEST(LatencyHistogramTest, SingleSample) {
  LatencyHistogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min_nanos(), 1000u);
  EXPECT_EQ(h.max_nanos(), 1000u);
  EXPECT_DOUBLE_EQ(h.MeanNanos(), 1000.0);
  // With one sample every percentile is (clamped to) that sample.
  EXPECT_DOUBLE_EQ(h.PercentileNanos(0.5), 1000.0);
  EXPECT_DOUBLE_EQ(h.PercentileNanos(0.99), 1000.0);
}

TEST(LatencyHistogramTest, PercentilesAreMonotone) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 10000; v += 7) h.Record(v);
  double last = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double p = h.PercentileNanos(q);
    EXPECT_GE(p, last) << q;
    last = p;
  }
  EXPECT_LE(last, static_cast<double>(h.max_nanos()));
}

TEST(LatencyHistogramTest, MedianWithinBucketResolution) {
  LatencyHistogram h;
  // 1000 samples uniform in [1000, 2000): true median ~1500; sqrt(2)
  // buckets bound the error by one bucket ratio.
  for (int i = 0; i < 1000; ++i) h.Record(1000 + i);
  const double median = h.PercentileNanos(0.5);
  EXPECT_GE(median, 1000.0);
  EXPECT_LE(median, 2000.0);
}

TEST(LatencyHistogramTest, ExtremeValuesClampToLastBucket) {
  LatencyHistogram h;
  h.Record(0);
  h.Record(~0ull);  // far beyond the last bucket bound
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max_nanos(), ~0ull);
  EXPECT_GT(h.PercentileNanos(1.0), 0.0);
}

TEST(LatencyHistogramTest, BucketBoundsStrictlyIncrease) {
  for (std::size_t b = 1; b < LatencyHistogram::kBuckets; ++b) {
    EXPECT_GT(LatencyHistogram::BucketUpperBound(b),
              LatencyHistogram::BucketUpperBound(b - 1));
  }
  // The table must reach well past 10 seconds.
  EXPECT_GT(LatencyHistogram::BucketUpperBound(LatencyHistogram::kBuckets - 1),
            units::Seconds(10));
}

TEST(LatencyHistogramTest, MergeCombines) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 100; ++i) a.Record(100);
  for (int i = 0; i < 100; ++i) b.Record(10000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min_nanos(), 100u);
  EXPECT_EQ(a.max_nanos(), 10000u);
  EXPECT_NEAR(a.MeanNanos(), 5050.0, 1.0);
  EXPECT_LT(a.PercentileNanos(0.4), 200.0);
  EXPECT_GT(a.PercentileNanos(0.9), 5000.0);
}

TEST(LatencyHistogramTest, PercentileExtremesReturnExactMinAndMax) {
  LatencyHistogram h;
  // Empty histogram: every quantile, extremes included, is 0.
  EXPECT_DOUBLE_EQ(h.PercentileNanos(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.PercentileNanos(1.0), 0.0);

  h.Record(1200);
  h.Record(3400);
  h.Record(777777);
  // q=0 / q=1 are exact observed extremes, not bucket bounds.
  EXPECT_DOUBLE_EQ(h.PercentileNanos(0.0), 1200.0);
  EXPECT_DOUBLE_EQ(h.PercentileNanos(1.0), 777777.0);
  // Out-of-range q clamps to the extremes.
  EXPECT_DOUBLE_EQ(h.PercentileNanos(-0.5), 1200.0);
  EXPECT_DOUBLE_EQ(h.PercentileNanos(2.0), 777777.0);
}

TEST(LatencyHistogramTest, MergePreservesMinMaxWhenEitherSideEmpty) {
  LatencyHistogram filled;
  filled.Record(500);
  filled.Record(9000);

  LatencyHistogram empty;
  filled.Merge(empty);  // empty right side must not disturb the extremes
  EXPECT_EQ(filled.count(), 2u);
  EXPECT_EQ(filled.min_nanos(), 500u);
  EXPECT_EQ(filled.max_nanos(), 9000u);

  LatencyHistogram target;
  target.Merge(filled);  // empty left side adopts the right's extremes
  EXPECT_EQ(target.count(), 2u);
  EXPECT_EQ(target.min_nanos(), 500u);
  EXPECT_EQ(target.max_nanos(), 9000u);
  EXPECT_DOUBLE_EQ(target.PercentileNanos(0.0), 500.0);
  EXPECT_DOUBLE_EQ(target.PercentileNanos(1.0), 9000.0);

  LatencyHistogram still_empty;
  still_empty.Merge(empty);  // empty + empty stays a valid empty histogram
  EXPECT_EQ(still_empty.count(), 0u);
  EXPECT_EQ(still_empty.min_nanos(), 0u);
  EXPECT_EQ(still_empty.max_nanos(), 0u);
  EXPECT_DOUBLE_EQ(still_empty.PercentileNanos(0.5), 0.0);
}

// --- Exemplar reservoir ---

Exemplar Tagged(std::uint64_t nanos, std::uint64_t trace_id,
                std::uint64_t span_id, std::uint64_t at) {
  Exemplar tag;
  tag.nanos = nanos;
  tag.trace_id = trace_id;
  tag.span_id = span_id;
  tag.at = at;
  return tag;
}

TEST(ExemplarTest, PlainRecordLeavesReservoirEmpty) {
  LatencyHistogram h;
  h.Record(1000);
  h.Record(2000);
  EXPECT_TRUE(h.exemplars().empty());
  EXPECT_TRUE(h.TakeExemplars().empty());
  EXPECT_EQ(h.count(), 2u);
}

TEST(ExemplarTest, KeepsWorstKWorstFirst) {
  LatencyHistogram h;
  // 2 * capacity samples with distinct latencies 1..16 (in mixed order).
  for (std::uint64_t n : {9, 2, 16, 5, 12, 1, 7, 14, 3, 10, 6, 13, 4, 15, 8,
                          11}) {
    h.Record(n, Tagged(n, /*trace_id=*/n, /*span_id=*/n, /*at=*/n));
  }
  const std::vector<Exemplar> kept = h.TakeExemplars();
  ASSERT_EQ(kept.size(), LatencyHistogram::kExemplarCapacity);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].nanos, 16u - i) << i;  // 16, 15, ..., 9 worst-first
  }
  // Sample counting is unaffected by reservoir eviction.
  EXPECT_EQ(h.count(), 16u);
}

TEST(ExemplarTest, TakeDrainsAndResetsForNextWindow) {
  LatencyHistogram h;
  h.Record(100, Tagged(100, 1, 1, 10));
  ASSERT_EQ(h.TakeExemplars().size(), 1u);
  EXPECT_TRUE(h.exemplars().empty());
  // A fresh window retains fresh samples, even smaller ones.
  h.Record(50, Tagged(50, 2, 2, 20));
  const std::vector<Exemplar> next = h.TakeExemplars();
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].trace_id, 2u);
}

TEST(ExemplarTest, TieBreakIsDeterministic) {
  // Equal latencies: earlier completion wins, then smaller trace id, then
  // smaller span id — insertion order must not matter.
  LatencyHistogram a;
  LatencyHistogram b;
  const std::vector<Exemplar> samples = {
      Tagged(500, 3, 1, 7), Tagged(500, 2, 9, 7), Tagged(500, 2, 4, 7),
      Tagged(500, 8, 8, 3), Tagged(900, 1, 1, 50),
  };
  for (const Exemplar& s : samples) a.Record(s.nanos, s);
  for (auto it = samples.rbegin(); it != samples.rend(); ++it) {
    b.Record(it->nanos, *it);
  }
  const std::vector<Exemplar> from_a = a.TakeExemplars();
  const std::vector<Exemplar> from_b = b.TakeExemplars();
  ASSERT_EQ(from_a.size(), samples.size());
  ASSERT_EQ(from_b.size(), samples.size());
  for (std::size_t i = 0; i < from_a.size(); ++i) {
    EXPECT_EQ(from_a[i].trace_id, from_b[i].trace_id) << i;
    EXPECT_EQ(from_a[i].span_id, from_b[i].span_id) << i;
  }
  EXPECT_EQ(from_a[0].nanos, 900u);           // worst latency first
  EXPECT_EQ(from_a[1].at, 3u);                // then earliest completion
  EXPECT_EQ(from_a[2].trace_id, 2u);          // then smallest trace id...
  EXPECT_EQ(from_a[2].span_id, 4u);           // ...and smallest span id
  EXPECT_EQ(from_a[3].span_id, 9u);
  EXPECT_EQ(from_a[4].trace_id, 3u);
}

TEST(ExemplarTest, UntaggedFieldsDefaultToNoServer) {
  Exemplar tag;
  EXPECT_EQ(tag.server, kNoExemplarServer);
  EXPECT_EQ(tag.trace_id, 0u);
}

// --- MetricsRegistry ---

TEST(MetricsRegistryTest, HistogramsPersistByName) {
  MetricsRegistry registry;
  registry.Histogram("op.a").Record(5);
  registry.Histogram("op.a").Record(7);
  registry.Histogram("op.b").Record(9);
  EXPECT_EQ(registry.Histogram("op.a").count(), 2u);
  EXPECT_EQ(registry.Histogram("op.b").count(), 1u);
  EXPECT_EQ(registry.all().size(), 2u);
}

TEST(MetricsRegistryTest, ReportPrintsAllOperations) {
  MetricsRegistry registry;
  registry.Histogram("kv.get").Record(units::Micros(120));
  registry.Histogram("vfs.read").Record(units::Micros(250));
  std::ostringstream os;
  registry.Report(os);
  EXPECT_NE(os.str().find("kv.get"), std::string::npos);
  EXPECT_NE(os.str().find("vfs.read"), std::string::npos);
}

TEST(MetricsRegistryTest, CountersAccumulateByName) {
  MetricsRegistry registry;
  registry.Counter("kv.retries") += 3;
  ++registry.Counter("kv.retries");
  registry.Counter("fs.read_repairs") = 2;
  EXPECT_EQ(registry.CounterValue("kv.retries"), 4u);
  EXPECT_EQ(registry.CounterValue("fs.read_repairs"), 2u);
  EXPECT_EQ(registry.CounterValue("never.touched"), 0u);
  EXPECT_EQ(registry.counters().size(), 2u);

  // Nonzero counters show up in the report alongside the histograms.
  registry.Histogram("kv.get").Record(units::Micros(10));
  std::ostringstream os;
  registry.Report(os);
  EXPECT_NE(os.str().find("kv.retries"), std::string::npos);
  EXPECT_NE(os.str().find("fs.read_repairs"), std::string::npos);
}

TEST(MetricsRegistryTest, GaugesGoUpAndDownAndPersistByName) {
  MetricsRegistry registry;
  registry.Gauge("kv.queue/0") = 5;
  registry.Gauge("kv.queue/0") -= 2;
  registry.Gauge("kv.mem_bytes/1") += 300;
  EXPECT_EQ(registry.GaugeValue("kv.queue/0"), 3);
  EXPECT_EQ(registry.GaugeValue("kv.mem_bytes/1"), 300);
  EXPECT_EQ(registry.GaugeValue("never.touched"), 0);
  EXPECT_EQ(registry.gauges().size(), 2u);

  // References stay valid as later names rebalance the map.
  std::int64_t& queue = registry.Gauge("kv.queue/0");
  for (int i = 0; i < 64; ++i) registry.Gauge("g" + std::to_string(i)) = i;
  queue = -7;  // gauges may legitimately go negative on accounting bugs
  EXPECT_EQ(registry.GaugeValue("kv.queue/0"), -7);
}

TEST(MetricsRegistryTest, GaugeHelpersIgnoreNullTargets) {
  GaugeAdd(nullptr, 5);  // the uninstrumented path: one branch, no effect
  GaugeSet(nullptr, 5);
  MetricsRegistry registry;
  std::int64_t* gauge = &registry.Gauge("g");
  GaugeAdd(gauge, 5);
  GaugeAdd(gauge, -2);
  EXPECT_EQ(registry.GaugeValue("g"), 3);
  GaugeSet(gauge, 11);
  EXPECT_EQ(registry.GaugeValue("g"), 11);
}

TEST(MetricsRegistryTest, InstanceGaugeNameFormatsBaseSlashIndex) {
  EXPECT_EQ(InstanceGaugeName("kv.mem_bytes", 0), "kv.mem_bytes/0");
  EXPECT_EQ(InstanceGaugeName("io.queued", 17), "io.queued/17");
}

TEST(MetricsRegistryTest, NonzeroGaugesAppearInReport) {
  MetricsRegistry registry;
  registry.Gauge("fs.open_files/0") = 4;
  registry.Gauge("silent") = 0;
  std::ostringstream os;
  registry.Report(os);
  EXPECT_NE(os.str().find("fs.open_files/0"), std::string::npos);
  EXPECT_EQ(os.str().find("silent"), std::string::npos);
}

// --- End-to-end recording through the stack ---

TEST(MetricsIntegrationTest, MemFsAndKvOpsRecorded) {
  MetricsRegistry registry;
  workloads::TestbedConfig config;
  config.nodes = 4;
  config.metrics = &registry;
  workloads::Testbed bed(workloads::FsKind::kMemFs, config);

  workloads::EnvelopeParams params;
  params.nodes = 4;
  params.file_size = MiB(1);
  params.files_per_proc = 2;
  workloads::EnvelopeBench bench(bed.simulation(), bed.vfs(), params,
                                 nullptr);
  (void)bench.RunWrite();
  (void)bench.RunRead11();

  EXPECT_EQ(registry.Histogram("vfs.create").count(), 8u);
  EXPECT_EQ(registry.Histogram("vfs.open").count(), 8u);
  EXPECT_GT(registry.Histogram("vfs.write").count(), 0u);
  EXPECT_GT(registry.Histogram("vfs.read").count(), 0u);
  EXPECT_GT(registry.Histogram("kv.set").count(), 0u);
  EXPECT_GT(registry.Histogram("kv.get").count(), 0u);
  // VFS reads include stripe fetches, so their latency dominates the raw
  // kv GET latency.
  EXPECT_GT(registry.Histogram("vfs.read").PercentileNanos(0.99),
            registry.Histogram("kv.get").PercentileNanos(0.5));
}

// --- Flush (§3.2.2) ---

TEST(FlushTest, FlushDrainsInFlightStripesAndKeepsHandleWritable) {
  workloads::TestbedConfig config;
  config.nodes = 4;
  workloads::Testbed bed(workloads::FsKind::kMemFs, config);
  auto& sim = bed.simulation();
  fs::Vfs& vfs = bed.vfs();

  auto created = Await(sim, vfs.Create({0, 0}, "/flushy"));
  ASSERT_TRUE(created.ok());
  const Bytes part1 = Bytes::Synthetic(KiB(512) * 3, 1);
  ASSERT_TRUE(Await(sim, vfs.Write({0, 0}, created.value(), part1)).ok());
  ASSERT_TRUE(Await(sim, vfs.Flush({0, 0}, created.value())).ok());
  // After flush, all full stripes are on the servers.
  EXPECT_GE(bed.TotalMemoryUsed(), KiB(512) * 3);

  // The handle is still writable after flush.
  const Bytes part2 = Bytes::Synthetic(KiB(512) * 3, 1).Slice(0, 0);
  ASSERT_TRUE(
      Await(sim, vfs.Write({0, 0}, created.value(),
                           Bytes::Synthetic(KiB(100), 2)))
          .ok());
  ASSERT_TRUE(Await(sim, vfs.Close({0, 0}, created.value())).ok());

  auto info = Await(sim, vfs.Stat({1, 0}, "/flushy"));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, KiB(512) * 3 + KiB(100));
}

TEST(FlushTest, FlushOnReadHandleIsNoOp) {
  workloads::TestbedConfig config;
  config.nodes = 2;
  workloads::Testbed bed(workloads::FsKind::kMemFs, config);
  auto& sim = bed.simulation();
  fs::Vfs& vfs = bed.vfs();

  auto created = Await(sim, vfs.Create({0, 0}, "/ro"));
  ASSERT_TRUE(created.ok());
  (void)Await(sim, vfs.Write({0, 0}, created.value(), Bytes::Copy("x")));
  ASSERT_TRUE(Await(sim, vfs.Close({0, 0}, created.value())).ok());

  auto opened = Await(sim, vfs.Open({1, 0}, "/ro"));
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(Await(sim, vfs.Flush({1, 0}, opened.value())).ok());
  (void)Await(sim, vfs.Close({1, 0}, opened.value()));
}

TEST(FlushTest, FlushBadHandleRejected) {
  workloads::TestbedConfig config;
  config.nodes = 2;
  workloads::Testbed bed(workloads::FsKind::kMemFs, config);
  EXPECT_EQ(Await(bed.simulation(), bed.vfs().Flush({0, 0}, 12345)).code(),
            ErrorCode::kBadHandle);
}

TEST(FlushTest, AmfsFlushIsAccepted) {
  workloads::TestbedConfig config;
  config.nodes = 2;
  workloads::Testbed bed(workloads::FsKind::kAmfs, config);
  auto& sim = bed.simulation();
  fs::Vfs& vfs = bed.vfs();
  auto created = Await(sim, vfs.Create({0, 0}, "/af"));
  ASSERT_TRUE(created.ok());
  EXPECT_TRUE(Await(sim, vfs.Flush({0, 0}, created.value())).ok());
  (void)Await(sim, vfs.Close({0, 0}, created.value()));
}

}  // namespace
}  // namespace memfs
