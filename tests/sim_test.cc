// Unit tests for the discrete-event core: event ordering, coroutine tasks,
// futures, semaphores, wait groups, determinism.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/future.h"
#include "sim/pool_alloc.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace memfs::sim {
namespace {

TEST(SimulationTest, StartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_TRUE(sim.empty());
}

TEST(SimulationTest, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(SimulationTest, TiesBreakInSchedulingOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(100, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, NestedSchedulingAdvancesTime) {
  Simulation sim;
  SimTime inner_time = 0;
  sim.Schedule(5, [&] { sim.Schedule(7, [&] { inner_time = sim.now(); }); });
  sim.Run();
  EXPECT_EQ(inner_time, 12u);
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(100, [&] { ++fired; });
  sim.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.Step());
}

// --- Coroutine tasks ---

Task SetFlagAfter(Simulation& sim, SimTime delay, bool& flag) {
  co_await sim.Delay(delay);
  flag = true;
}

TEST(TaskTest, DelayResumesAtRightTime) {
  Simulation sim;
  bool flag = false;
  SetFlagAfter(sim, 250, flag);
  EXPECT_FALSE(flag);  // suspended at the delay
  sim.Run();
  EXPECT_TRUE(flag);
  EXPECT_EQ(sim.now(), 250u);
}

TEST(TaskTest, ZeroDelayDoesNotSuspend) {
  Simulation sim;
  bool flag = false;
  SetFlagAfter(sim, 0, flag);
  EXPECT_TRUE(flag);  // ran to completion eagerly
}

TEST(TaskTest, YieldDefersToSameInstant) {
  Simulation sim;
  std::vector<int> order;
  [](Simulation& s, std::vector<int>& log) -> Task {
    log.push_back(1);
    co_await s.Yield();
    log.push_back(3);
  }(sim, order);
  order.push_back(2);
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 0u);
}

// --- Future / Promise ---

TEST(FutureTest, AwaitAlreadyFulfilled) {
  Simulation sim;
  Promise<int> promise(sim);
  promise.Set(9);
  int got = 0;
  [](Future<int> f, int& out) -> Task { out = co_await f; }(
      promise.GetFuture(), got);
  sim.Run();
  EXPECT_EQ(got, 9);
}

TEST(FutureTest, MultipleWaitersAllResume) {
  Simulation sim;
  Promise<int> promise(sim);
  auto future = promise.GetFuture();
  int sum = 0;
  for (int i = 0; i < 4; ++i) {
    [](Future<int> f, int& total) -> Task { total += co_await f; }(future,
                                                                   sum);
  }
  sim.Schedule(10, [&] { promise.Set(5); });
  sim.Run();
  EXPECT_EQ(sum, 20);
}

TEST(FutureTest, ValuePeekAfterRun) {
  Simulation sim;
  Promise<int> promise(sim);
  auto future = promise.GetFuture();
  EXPECT_FALSE(future.ready());
  sim.Schedule(3, [&] { promise.Set(1); });
  sim.Run();
  ASSERT_TRUE(future.ready());
  EXPECT_EQ(future.value(), 1);
}

// --- Semaphore ---

Task AcquireHoldRelease(Simulation& sim, Semaphore& sem, SimTime hold,
                        std::vector<SimTime>& done_times) {
  co_await sem.Acquire();
  co_await sim.Delay(hold);
  sem.Release();
  done_times.push_back(sim.now());
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Simulation sim;
  Semaphore sem(sim, 2);
  std::vector<SimTime> done;
  for (int i = 0; i < 6; ++i) AcquireHoldRelease(sim, sem, 100, done);
  sim.Run();
  // 6 tasks, width 2, 100ns each -> waves at 100, 200, 300.
  EXPECT_EQ(done, (std::vector<SimTime>{100, 100, 200, 200, 300, 300}));
}

TEST(SemaphoreTest, FifoOrdering) {
  Simulation sim;
  Semaphore sem(sim, 1);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    [](Simulation& s, Semaphore& m, int id, std::vector<int>& log) -> Task {
      co_await m.Acquire();
      co_await s.Delay(10);
      log.push_back(id);
      m.Release();
    }(sim, sem, i, order);
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SemaphoreTest, TryAcquire) {
  Simulation sim;
  Semaphore sem(sim, 1);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_TRUE(!sem.TryAcquire());
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
}

TEST(SemaphoreTest, WaitingCount) {
  Simulation sim;
  Semaphore sem(sim, 1);
  std::vector<SimTime> done;
  AcquireHoldRelease(sim, sem, 50, done);  // holds the permit
  AcquireHoldRelease(sim, sem, 50, done);
  AcquireHoldRelease(sim, sem, 50, done);
  EXPECT_EQ(sem.waiting(), 2u);
  sim.Run();
  EXPECT_EQ(sem.waiting(), 0u);
}

// --- WaitGroup ---

TEST(WaitGroupTest, WaitsForAll) {
  Simulation sim;
  WaitGroup wg(sim);
  bool all_done = false;
  for (int i = 1; i <= 3; ++i) {
    wg.Add();
    [](Simulation& s, WaitGroup& group, SimTime t) -> Task {
      co_await s.Delay(t);
      group.Done();
    }(sim, wg, static_cast<SimTime>(i * 100));
  }
  [](WaitGroup& group, bool& flag) -> Task {
    co_await group.Wait();
    flag = true;
  }(wg, all_done);
  sim.RunUntil(299);
  EXPECT_FALSE(all_done);
  sim.Run();
  EXPECT_TRUE(all_done);
  EXPECT_EQ(sim.now(), 300u);
}

TEST(WaitGroupTest, WaitOnEmptyGroupReturnsImmediately) {
  Simulation sim;
  WaitGroup wg(sim);
  bool done = false;
  [](WaitGroup& group, bool& flag) -> Task {
    co_await group.Wait();
    flag = true;
  }(wg, done);
  EXPECT_TRUE(done);
}

// --- Determinism ---

TEST(DeterminismTest, IdenticalRunsProduceIdenticalTraces) {
  auto run = [] {
    Simulation sim;
    Semaphore sem(sim, 3);
    std::vector<SimTime> done;
    for (int i = 0; i < 20; ++i) {
      AcquireHoldRelease(sim, sem, 17 + (i % 5) * 13, done);
    }
    sim.Run();
    return std::pair{done, sim.events_processed()};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// --- Event heap (ISSUE 9 rewrite) ---
//
// The 4-ary pooled heap replaced std::priority_queue<Event>. Its contract is
// that pops come out in (time, insertion seq) order — the exact total order
// the old queue used — so the event stream, and therefore EventDigest(), is
// byte-identical. These tests drive randomized schedules against a reference
// model of that order and against an independently computed digest.

// Order-sensitive FNV-1a over (time, seq) pairs, mirroring Simulation's
// digest definition.
std::uint64_t ReferenceDigest(
    const std::vector<std::pair<SimTime, std::uint64_t>>& events) {
  std::uint64_t h = 14695981039346656037ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& [time, seq] : events) {
    mix(time);
    mix(seq);
  }
  return h;
}

TEST(EventHeapTest, RandomizedScheduleMatchesReferenceOrderAndDigest) {
  for (std::uint64_t trial = 0; trial < 50; ++trial) {
    Simulation sim;
    std::uint64_t state = 0x9e3779b97f4a7c15ull * (trial + 1);
    auto next = [&state] {  // splitmix64
      std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    };
    // Heavily duplicated times force the seq tie-break to decide most pops.
    std::vector<std::pair<SimTime, std::uint64_t>> expected;
    std::vector<std::pair<SimTime, std::uint64_t>> popped;
    for (std::uint64_t i = 0; i < 200; ++i) {
      const SimTime when = next() % 16;
      expected.emplace_back(when, i);
      sim.ScheduleAt(when, [&popped, &sim, seq = i] {
        popped.emplace_back(sim.now(), seq);
      });
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });  // stable = insertion order breaks ties
    sim.Run();
    ASSERT_EQ(popped, expected) << "trial " << trial;
    // The digest folds (time, internal seq); internal seqs are the insertion
    // indices here because nothing else scheduled, so the reference applies.
    EXPECT_EQ(sim.EventDigest(), ReferenceDigest(expected));
  }
}

TEST(EventHeapTest, SchedulingDuringRunKeepsTotalOrder) {
  // Callbacks scheduling new events mid-run exercise cell reuse (freed cells
  // are recycled immediately) and sift-down across chunk boundaries.
  Simulation sim;
  std::vector<std::pair<SimTime, int>> order;
  for (int i = 0; i < 8; ++i) {
    sim.ScheduleAt(10 * (i + 1), [&order, &sim, i] {
      order.emplace_back(sim.now(), i);
      // Same-time follow-up: must run after all previously scheduled events
      // at this instant (higher seq), before any later time.
      sim.Schedule(0, [&order, &sim, i] {
        order.emplace_back(sim.now(), 100 + i);
      });
    });
  }
  sim.Run();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(order[2 * i].second, i);
    EXPECT_EQ(order[2 * i + 1].second, 100 + i);
    EXPECT_EQ(order[2 * i].first, order[2 * i + 1].first);
  }
}

TEST(EventHeapTest, LargeCallablesAreBoxedCorrectly) {
  // Callables above the 56-byte inline cell budget take the boxed path;
  // both must run and destroy exactly once.
  Simulation sim;
  struct Big {
    char payload[128];
  };
  Big big{};
  big.payload[0] = 42;
  int runs = 0;
  auto shared = std::make_shared<int>(7);  // destruction tracked by use_count
  std::weak_ptr<int> watch = shared;
  sim.Schedule(5, [big, shared, &runs] {
    runs += big.payload[0] + *shared;
  });
  shared.reset();
  EXPECT_FALSE(watch.expired());  // the boxed copy keeps it alive
  sim.Run();
  EXPECT_EQ(runs, 49);
  EXPECT_TRUE(watch.expired());  // boxed callable destroyed after running
}

// --- Frame pool (ISSUE 9) ---

#ifndef MEMFS_POOL_ALLOC_BYPASS
TEST(PoolAllocTest, SameSizeClassRecyclesTheBlock) {
  // LIFO free list: freeing then reallocating within a size class returns
  // the identical block (this is the property that removes frame churn).
  void* a = detail::PoolAlloc(48);
  detail::PoolFree(a);
  void* b = detail::PoolAlloc(40);  // same 64-byte class as 48
  EXPECT_EQ(a, b);
  detail::PoolFree(b);
}

TEST(PoolAllocTest, DistinctClassesDoNotShareBlocks) {
  void* small = detail::PoolAlloc(16);
  detail::PoolFree(small);
  void* large = detail::PoolAlloc(512);  // different class: no reuse
  EXPECT_NE(small, large);
  detail::PoolFree(large);
}
#endif  // MEMFS_POOL_ALLOC_BYPASS

TEST(PoolAllocTest, OversizeAllocationsFallBackToTheHeap) {
  // Payloads past the largest size class bypass the free lists entirely but
  // must still round-trip through PoolFree.
  void* p = detail::PoolAlloc(64 * 1024);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, 64 * 1024);  // the block must really be that big
  detail::PoolFree(p);
}

TEST(EventHeapTest, UnrunEventsAreDestroyedWithTheSimulation) {
  auto shared = std::make_shared<int>(1);
  std::weak_ptr<int> watch = shared;
  {
    Simulation sim;
    sim.Schedule(100, [shared] { (void)shared; });
    shared.reset();
    EXPECT_FALSE(watch.expired());
  }  // ~Simulation drains the heap without running the callbacks
  EXPECT_TRUE(watch.expired());
}

}  // namespace
}  // namespace memfs::sim
