// Tests for the tracing subsystem: tracer core (ids, parenting, ring
// bounds, null no-op), ScopedSpan lifetime, Chrome export, critical-path
// extraction, and end-to-end span trees recorded through the MemFS stack.
#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/units.h"
#include "kvstore/kv_cluster.h"
#include "memfs/memfs.h"
#include "net/fluid_network.h"
#include "test_util.h"
#include "trace/critical_path.h"
#include "trace/export.h"
#include "trace/trace.h"

namespace memfs::trace {
namespace {

using memfs::testing::Await;
using units::KiB;
using units::MiB;

// --- Tracer core ---

TEST(TracerTest, IdsAndParentage) {
  sim::Simulation sim;
  Tracer tracer(sim);

  const TraceContext root = tracer.StartTrace("op", "vfs", 3);
  EXPECT_TRUE(root.active());
  EXPECT_EQ(root.trace_id, 1u);
  EXPECT_EQ(root.span_id, 1u);
  EXPECT_EQ(root.node, 3u);

  const TraceContext child = Child(root, "inner", "kv");
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_EQ(child.span_id, 2u);
  EXPECT_EQ(child.node, 3u);  // inherited
  const TraceContext remote = ChildOn(root, "server", "net", 7);
  EXPECT_EQ(remote.node, 7u);

  EXPECT_EQ(tracer.open_spans(), 3u);
  End(child);
  End(remote);
  End(root);
  EXPECT_EQ(tracer.open_spans(), 0u);
  ASSERT_EQ(tracer.finished().size(), 3u);
  // Finished in EndSpan order; parent ids recorded.
  EXPECT_EQ(tracer.finished()[0].name, "inner");
  EXPECT_EQ(tracer.finished()[0].parent_id, root.span_id);
  EXPECT_EQ(tracer.finished()[2].parent_id, 0u);

  // A second trace gets a fresh trace id but the span counter continues.
  const TraceContext next = tracer.StartTrace("op2", "vfs");
  EXPECT_EQ(next.trace_id, 2u);
  EXPECT_GT(next.span_id, root.span_id);
  End(next);
}

TEST(TracerTest, TimestampsComeFromSimClock) {
  sim::Simulation sim;
  Tracer tracer(sim);
  const TraceContext root = tracer.StartTrace("op", "vfs");
  bool done = false;
  [](sim::Simulation& s, TraceContext parent, bool& flag) -> sim::Task {
    co_await s.Delay(100);
    ScopedSpan span(parent, "step", "kv");
    Event(span.context(), "mark");
    co_await s.Delay(50);
    flag = true;
  }(sim, root, done);
  sim.Run();
  ASSERT_TRUE(done);
  End(root);

  ASSERT_EQ(tracer.finished().size(), 2u);
  const SpanRecord& step = tracer.finished()[0];
  EXPECT_EQ(step.start, 100u);
  EXPECT_EQ(step.end, 150u);
  ASSERT_EQ(step.events.size(), 1u);
  EXPECT_EQ(step.events[0].name, "mark");
  EXPECT_EQ(step.events[0].when, 100u);
}

TEST(TracerTest, NullContextIsInertEverywhere) {
  const TraceContext null_ctx;
  EXPECT_FALSE(null_ctx.active());
  // None of these may touch a tracer (there is none) or crash.
  const TraceContext child = Child(null_ctx, "x", "y");
  EXPECT_FALSE(child.active());
  End(child);
  Event(null_ctx, "e");
  Annotate(null_ctx, "k", "v");
  ScopedSpan span(null_ctx, "x", "y");
  EXPECT_FALSE(span.context().active());
}

TEST(TracerTest, FinishedRingDropsOldest) {
  sim::Simulation sim;
  TracerConfig config;
  config.max_finished_spans = 4;
  Tracer tracer(sim, config);
  const TraceContext root = tracer.StartTrace("root", "vfs");
  for (int i = 0; i < 10; ++i) End(Child(root, "c" + std::to_string(i), "kv"));
  End(root);

  EXPECT_EQ(tracer.finished().size(), 4u);
  EXPECT_EQ(tracer.dropped_spans(), 7u);  // 11 finished, ring of 4
  EXPECT_EQ(tracer.spans_started(), 11u);
  // The newest spans survive: the ring keeps the last four to end
  // (c7, c8, c9, root).
  EXPECT_EQ(tracer.finished().back().name, "root");
  EXPECT_EQ(tracer.finished().front().name, "c7");
}

TEST(TracerTest, EndingUnknownOrEndedSpanIsNoOp) {
  sim::Simulation sim;
  Tracer tracer(sim);
  const TraceContext root = tracer.StartTrace("root", "vfs");
  End(root);
  End(root);  // double end
  TraceContext bogus = root;
  bogus.span_id = 999;
  End(bogus);
  Event(root, "late");          // after end: dropped
  Annotate(root, "late", "x");  // after end: dropped
  EXPECT_EQ(tracer.finished().size(), 1u);
  EXPECT_TRUE(tracer.finished()[0].events.empty());
  EXPECT_TRUE(tracer.finished()[0].args.empty());
}

TEST(TracerTest, SerializeIsDeterministic) {
  auto run = [] {
    sim::Simulation sim;
    Tracer tracer(sim);
    const TraceContext root = tracer.StartTrace("root", "workflow");
    TraceContext child = Child(root, "leg", "net");
    Annotate(child, "bytes", "512");
    Event(child, "sent");
    End(child);
    End(root);
    std::ostringstream os;
    tracer.Serialize(os);
    return os.str();
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  EXPECT_NE(first.find("name=leg"), std::string::npos);
  EXPECT_NE(first.find("arg:bytes=512"), std::string::npos);
}

TEST(ScopedSpanTest, MoveTransfersOwnership) {
  sim::Simulation sim;
  Tracer tracer(sim);
  const TraceContext root = tracer.StartTrace("root", "vfs");
  {
    ScopedSpan outer(root, "a", "kv");
    ScopedSpan moved = std::move(outer);
    EXPECT_TRUE(moved.context().active());
    EXPECT_EQ(tracer.open_spans(), 2u);  // root + a (not double-opened)
    moved.Close();
    moved.Close();  // idempotent
    EXPECT_EQ(tracer.open_spans(), 1u);
  }
  ScopedSpan adopted = ScopedSpan::Adopt(Child(root, "b", "kv"));
  EXPECT_EQ(tracer.open_spans(), 2u);
  adopted.Close();
  End(root);
  EXPECT_EQ(tracer.open_spans(), 0u);
}

// --- Chrome export ---

TEST(ChromeExportTest, EmitsWellFormedEvents) {
  sim::Simulation sim;
  Tracer tracer(sim);
  const TraceContext root = tracer.StartTrace("root", "workflow", 0);
  TraceContext leg = ChildOn(root, "net \"leg\"\n", "net", 2);  // escaping
  Annotate(leg, "bytes", "512");
  Event(leg, "sent");
  End(leg);
  End(root);

  std::ostringstream os;
  WriteChromeTrace(os, tracer);
  const std::string json = os.str();

  // Braces and brackets balance (all strings are escaped, so a raw scan is
  // exact for this exporter's output).
  int depth = 0;
  int min_depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    min_depth = std::min(min_depth, depth);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_GE(min_depth, 0);

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);      // span event
  EXPECT_NE(json.find("process_name"), std::string::npos);      // pid naming
  EXPECT_NE(json.find("\\\"leg\\\"\\n"), std::string::npos);    // escaped
  EXPECT_NE(json.find("\"bytes\":\"512\""), std::string::npos); // annotation
  EXPECT_EQ(json.find('\t'), std::string::npos);
}

TEST(ChromeExportTest, OverlappingSpansLandInSeparateLanes) {
  sim::Simulation sim;
  Tracer tracer(sim);
  const TraceContext root = tracer.StartTrace("root", "workflow", 0);
  // Two siblings whose intervals cross (neither contains the other): no
  // single lane can hold both as Chrome "X" events, so the exporter must
  // spill the second onto a fresh lane.
  bool done = false;
  [](sim::Simulation& s, TraceContext parent, bool& flag) -> sim::Task {
    TraceContext a = Child(parent, "a", "net");  // [0, 10]
    co_await s.Delay(5);
    TraceContext b = Child(parent, "b", "net");  // [5, 15] crosses a
    co_await s.Delay(5);
    End(a);
    co_await s.Delay(5);
    End(b);
    flag = true;
  }(sim, root, done);
  sim.Run();
  ASSERT_TRUE(done);
  End(root);

  std::ostringstream os;
  WriteChromeTrace(os, tracer);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
}

// --- Critical path ---

TEST(CriticalPathTest, TilesRootWindowAndAttributesSelfTime) {
  std::deque<SpanRecord> spans;
  auto add = [&spans](SpanId id, SpanId parent, const char* name,
                      const char* category, sim::SimTime start,
                      sim::SimTime end) {
    SpanRecord r;
    r.trace_id = 1;
    r.span_id = id;
    r.parent_id = parent;
    r.name = name;
    r.category = category;
    r.start = start;
    r.end = end;
    spans.push_back(r);
  };
  add(1, 0, "root", "workflow", 0, 100);
  add(2, 1, "compute", "compute", 10, 60);
  add(3, 1, "transfer", "net", 55, 90);  // overlaps compute; gates later
  add(4, 3, "service", "kv", 60, 70);    // inner chunk of the transfer

  const CriticalPath path = ExtractCriticalPath(spans, 1);
  ASSERT_TRUE(path.found);
  EXPECT_EQ(path.window_start, 0u);
  EXPECT_EQ(path.window_end, 100u);
  EXPECT_EQ(path.attributed, 100u);
  EXPECT_DOUBLE_EQ(path.AttributedFraction(), 1.0);

  // Segments tile the window in time order with no gaps.
  ASSERT_FALSE(path.segments.empty());
  EXPECT_EQ(path.segments.front().begin, 0u);
  EXPECT_EQ(path.segments.back().end, 100u);
  for (std::size_t i = 1; i < path.segments.size(); ++i) {
    EXPECT_EQ(path.segments[i].begin, path.segments[i - 1].end);
  }

  // Walking backward from 100: root self [90,100], transfer [70,90], kv
  // service [60,70], transfer [55,60], compute [10,55], root self [0,10].
  std::unordered_map<std::string, sim::SimTime> by_name;
  for (const auto& share : path.by_name) by_name[share.label] = share.nanos;
  EXPECT_EQ(by_name["root"], 20u);
  EXPECT_EQ(by_name["compute"], 45u);
  EXPECT_EQ(by_name["transfer"], 25u);
  EXPECT_EQ(by_name["service"], 10u);
}

TEST(CriticalPathTest, MissingRootReportsNotFound) {
  std::deque<SpanRecord> spans;
  const CriticalPath empty = ExtractCriticalPath(spans, 1);
  EXPECT_FALSE(empty.found);

  SpanRecord orphan;
  orphan.trace_id = 2;
  orphan.span_id = 5;
  orphan.parent_id = 4;  // parent never finished / dropped
  orphan.start = 0;
  orphan.end = 10;
  spans.push_back(orphan);
  EXPECT_FALSE(ExtractCriticalPath(spans, 1).found);
}

TEST(CriticalPathTest, PrintCoversLayerTable) {
  std::deque<SpanRecord> spans;
  SpanRecord root;
  root.trace_id = 1;
  root.span_id = 1;
  root.name = "root";
  root.category = "workflow";
  root.start = 0;
  root.end = units::Millis(10);
  spans.push_back(root);
  const CriticalPath path = ExtractCriticalPath(spans, 1);
  std::ostringstream os;
  PrintCriticalPath(os, path);
  EXPECT_NE(os.str().find("workflow"), std::string::npos);
  EXPECT_NE(os.str().find("100.0"), std::string::npos);  // full attribution
}

// --- End-to-end through the storage stack ---

class TraceStackTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kNodes = 4;

  TraceStackTest() : network_(sim_, net::Das4Ipoib(kNodes)) {
    std::vector<net::NodeId> ids;
    for (std::uint32_t n = 0; n < kNodes; ++n) ids.push_back(n);
    storage_ = std::make_unique<kv::KvCluster>(sim_, network_, ids);
    fs_ = std::make_unique<fs::MemFs>(sim_, network_, *storage_,
                                      fs::MemFsConfig{});
    tracer_ = std::make_unique<Tracer>(sim_);
  }

  // Writes and reads back one file under a traced root span.
  void RunTracedRoundTrip(const std::string& path, std::uint64_t size) {
    const TraceContext root = tracer_->StartTrace("round_trip", "task");
    const fs::VfsContext ctx{0, 0, root};
    auto created = Await(sim_, fs_->Create(ctx, path));
    ASSERT_TRUE(created.ok());
    ASSERT_TRUE(Await(sim_, fs_->Write(ctx, created.value(),
                                       Bytes::Synthetic(size, 1)))
                    .ok());
    ASSERT_TRUE(Await(sim_, fs_->Close(ctx, created.value())).ok());

    const fs::VfsContext reader{1, 0, root};
    auto opened = Await(sim_, fs_->Open(reader, path));
    ASSERT_TRUE(opened.ok());
    auto back = Await(sim_, fs_->Read(reader, opened.value(), 0, size));
    ASSERT_TRUE(back.ok());
    ASSERT_TRUE(Await(sim_, fs_->Close(reader, opened.value())).ok());
    End(root);
  }

  sim::Simulation sim_;
  net::FairShareNetwork network_;
  std::unique_ptr<kv::KvCluster> storage_;
  std::unique_ptr<fs::MemFs> fs_;
  std::unique_ptr<Tracer> tracer_;
};

TEST_F(TraceStackTest, VfsOpsDecomposeIntoLayeredSpans) {
  RunTracedRoundTrip("/traced", MiB(1) + KiB(64));
  EXPECT_EQ(tracer_->open_spans(), 0u);

  std::unordered_map<SpanId, const SpanRecord*> by_id;
  for (const auto& span : tracer_->finished()) by_id[span.span_id] = &span;

  // Every layer the ISSUE names shows up.
  auto count_category = [this](const std::string& cat) {
    std::size_t n = 0;
    for (const auto& span : tracer_->finished()) n += span.category == cat;
    return n;
  };
  EXPECT_GT(count_category("vfs"), 0u);
  EXPECT_GT(count_category("striper"), 0u);
  EXPECT_GT(count_category("kv"), 0u);
  EXPECT_GT(count_category("kv.attempt"), 0u);
  EXPECT_GT(count_category("kv.service"), 0u);
  EXPECT_GT(count_category("net"), 0u);

  // Spans nest: each net leg's ancestry climbs net -> kv.attempt -> kv ->
  // (striper ->) vfs -> task root, within one trace.
  std::size_t verified = 0;
  for (const auto& span : tracer_->finished()) {
    if (span.category != "net") continue;
    std::vector<std::string> chain;
    const SpanRecord* cursor = &span;
    while (cursor->parent_id != 0) {
      auto it = by_id.find(cursor->parent_id);
      ASSERT_NE(it, by_id.end()) << "broken parent chain at " << cursor->name;
      cursor = it->second;
      chain.push_back(cursor->category);
    }
    EXPECT_EQ(chain.front(), "kv.attempt");
    EXPECT_EQ(chain.back(), "task");
    EXPECT_NE(std::find(chain.begin(), chain.end(), "kv"), chain.end());
    EXPECT_NE(std::find(chain.begin(), chain.end(), "vfs"), chain.end());
    ++verified;
  }
  EXPECT_GT(verified, 0u);

  // A child never starts before its parent. (It may end after it: buffered
  // stripe flushes are detached children that outlive the vfs.write span,
  // which only waited for buffer admission.)
  for (const auto& span : tracer_->finished()) {
    if (span.parent_id == 0) continue;
    auto it = by_id.find(span.parent_id);
    if (it == by_id.end()) continue;
    EXPECT_GE(span.start, it->second->start) << span.name;
  }

  // The critical path of the round trip attributes its whole window.
  const CriticalPath path = ExtractCriticalPath(*tracer_, 1);
  ASSERT_TRUE(path.found);
  EXPECT_DOUBLE_EQ(path.AttributedFraction(), 1.0);
}

TEST_F(TraceStackTest, ServerSideSpansCarryTheServerNode) {
  RunTracedRoundTrip("/nodes", KiB(900));
  bool remote_service = false;
  for (const auto& span : tracer_->finished()) {
    if (span.category == "kv.service" && span.node != 0) {
      remote_service = true;
    }
  }
  // 1 MiB-ish striped over 4 servers: some service time lands off node 0.
  EXPECT_TRUE(remote_service);
}

TEST_F(TraceStackTest, TracingDoesNotPerturbTheSimulation) {
  auto digest_of = [](bool traced) {
    sim::Simulation sim;
    net::FairShareNetwork network(sim, net::Das4Ipoib(2));
    kv::KvCluster storage(sim, network, {0, 1});
    fs::MemFs fs(sim, network, storage, fs::MemFsConfig{});
    Tracer tracer(sim);
    TraceContext root;
    if (traced) root = tracer.StartTrace("write", "task");
    const fs::VfsContext ctx{0, 0, root};
    auto created = Await(sim, fs.Create(ctx, "/d"));
    EXPECT_TRUE(created.ok());
    EXPECT_TRUE(
        Await(sim, fs.Write(ctx, created.value(), Bytes::Synthetic(MiB(1), 1)))
            .ok());
    EXPECT_TRUE(Await(sim, fs.Close(ctx, created.value())).ok());
    End(root);
    return sim.EventDigest();
  };
  EXPECT_EQ(digest_of(true), digest_of(false));
}

}  // namespace
}  // namespace memfs::trace
