// Tests for the workflow engine: dependency resolution, schedulers, stage
// accounting, failure propagation; and for the workload generators.
#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "amfs/amfs.h"
#include "common/metrics.h"
#include "common/units.h"
#include "kvstore/kv_cluster.h"
#include "memfs/memfs.h"
#include "mtc/runner.h"
#include "mtc/scheduler.h"
#include "mtc/workflow.h"
#include "net/fluid_network.h"
#include "workloads/blast.h"
#include "workloads/montage.h"

namespace memfs::mtc {
namespace {

using units::KiB;
using units::MiB;

// Builds a diamond workflow: stage_in -> two parallel consumers -> join.
Workflow Diamond() {
  Workflow wf;
  wf.name = "diamond";
  wf.directories = {"/wf"};
  wf.tasks.push_back({"in", "stage_in", {}, {{"/wf/src", KiB(700)}}, 0});
  wf.tasks.push_back({"left", "fan", {"/wf/src"}, {{"/wf/l", KiB(300)}},
                      units::Millis(10)});
  wf.tasks.push_back({"right", "fan", {"/wf/src"}, {{"/wf/r", KiB(300)}},
                      units::Millis(10)});
  wf.tasks.push_back(
      {"join", "join", {"/wf/l", "/wf/r"}, {{"/wf/out", KiB(100)}}, 0});
  return wf;
}

struct MemFsCluster {
  explicit MemFsCluster(std::uint32_t nodes)
      : network(sim, net::Das4Ipoib(nodes)) {
    std::vector<net::NodeId> ids;
    for (std::uint32_t n = 0; n < nodes; ++n) ids.push_back(n);
    storage = std::make_unique<kv::KvCluster>(sim, network, ids);
    memfs = std::make_unique<fs::MemFs>(sim, network, *storage,
                                        fs::MemFsConfig{});
  }
  sim::Simulation sim;
  net::FairShareNetwork network;
  std::unique_ptr<kv::KvCluster> storage;
  std::unique_ptr<fs::MemFs> memfs;
};

TEST(WorkflowTest, ProducersIndex) {
  const Workflow wf = Diamond();
  const auto producers = wf.Producers();
  EXPECT_EQ(producers.at("/wf/src"), 0u);
  EXPECT_EQ(producers.at("/wf/out"), 3u);
  EXPECT_EQ(wf.TotalOutputBytes(), KiB(700) + KiB(300) * 2 + KiB(100));
}

TEST(RunnerTest, DiamondRunsInDependencyOrder) {
  MemFsCluster cluster(2);
  UniformScheduler scheduler;
  Runner runner(cluster.sim, *cluster.memfs, scheduler,
                {.nodes = 2, .cores_per_node = 2});
  const auto result = runner.Run(Diamond());
  ASSERT_TRUE(result.status.ok()) << result.status;
  ASSERT_EQ(result.stages.size(), 3u);
  EXPECT_EQ(result.stages[0].stage, "stage_in");
  EXPECT_EQ(result.stages[1].stage, "fan");
  EXPECT_EQ(result.stages[2].stage, "join");
  EXPECT_EQ(result.stages[1].tasks, 2u);
  // The join starts only after both fans finished.
  EXPECT_GE(result.stages[2].first_start, result.stages[1].last_end);
  EXPECT_EQ(result.bytes_written, KiB(700) + KiB(600) + KiB(100));
  EXPECT_EQ(result.bytes_read, KiB(700) * 2 + KiB(600));
}

TEST(RunnerTest, ReadVerificationCatchesCorruption) {
  // A workflow whose input has no producer and does not exist fails loudly.
  MemFsCluster cluster(2);
  UniformScheduler scheduler;
  Runner runner(cluster.sim, *cluster.memfs, scheduler,
                {.nodes = 2, .cores_per_node = 1});
  Workflow wf;
  wf.name = "broken";
  wf.tasks.push_back({"t", "s", {"/missing"}, {}, 0});
  const auto result = runner.Run(wf);
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.failed_task, "t");
}

TEST(RunnerTest, StalledWorkflowReported) {
  MemFsCluster cluster(1);
  UniformScheduler scheduler;
  Runner runner(cluster.sim, *cluster.memfs, scheduler,
                {.nodes = 1, .cores_per_node = 1});
  // Two tasks that consume each other's outputs: a dependency cycle.
  Workflow wf;
  wf.name = "cycle";
  wf.tasks.push_back({"a", "s", {"/x"}, {{"/y", 10}}, 0});
  wf.tasks.push_back({"b", "s", {"/y"}, {{"/x", 10}}, 0});
  const auto result = runner.Run(wf);
  EXPECT_FALSE(result.status.ok());
}

TEST(RunnerTest, MoreTasksThanCores) {
  MemFsCluster cluster(2);
  UniformScheduler scheduler;
  Runner runner(cluster.sim, *cluster.memfs, scheduler,
                {.nodes = 2, .cores_per_node = 2});
  Workflow wf;
  wf.name = "wide";
  wf.directories = {"/w"};
  for (int i = 0; i < 20; ++i) {
    wf.tasks.push_back({"t" + std::to_string(i), "wide", {},
                        {{"/w/f" + std::to_string(i), KiB(64)}},
                        units::Millis(50)});
  }
  const auto result = runner.Run(wf);
  ASSERT_TRUE(result.status.ok()) << result.status;
  // 20 tasks, 4 cores, 50 ms each -> at least 5 waves.
  EXPECT_GE(result.finished - result.started, units::Millis(250));
}

TEST(RunnerTest, VerticalScalingReducesMakespan) {
  auto run_with_cores = [](std::uint32_t cores) {
    MemFsCluster cluster(4);
    UniformScheduler scheduler;
    Runner runner(cluster.sim, *cluster.memfs, scheduler,
                  {.nodes = 4, .cores_per_node = cores});
    Workflow wf;
    wf.name = "scale";
    wf.directories = {"/s"};
    for (int i = 0; i < 32; ++i) {
      wf.tasks.push_back({"t" + std::to_string(i), "cpu", {},
                          {{"/s/f" + std::to_string(i), KiB(16)}},
                          units::Millis(100)});
    }
    return runner.Run(wf).MakespanSeconds();
  };
  EXPECT_GT(run_with_cores(1), run_with_cores(4) * 2);
}

TEST(RunnerTest, WidthLimitedParallelism) {
  // 12 pure-CPU tasks (no file I/O) on 2 nodes x 3 cores run in exactly
  // ceil(12/6) = 2 waves: the runner never oversubscribes core slots, and
  // with nothing else to wait on the makespan is exactly two task lengths.
  MemFsCluster cluster(2);
  UniformScheduler scheduler;
  Runner runner(cluster.sim, *cluster.memfs, scheduler,
                {.nodes = 2, .cores_per_node = 3});
  Workflow wf;
  wf.name = "pure_cpu";
  for (int i = 0; i < 12; ++i) {
    wf.tasks.push_back(
        {"t" + std::to_string(i), "cpu", {}, {}, units::Millis(20)});
  }
  const auto result = runner.Run(wf);
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.finished - result.started, units::Millis(40));
  ASSERT_EQ(result.stages.size(), 1u);
  EXPECT_EQ(result.stages[0].tasks, 12u);
  EXPECT_EQ(result.stages[0].busy, units::Millis(20) * 12);
}

TEST(RunnerTest, MetricsRecordTasksAndBytes) {
  MemFsCluster cluster(2);
  MetricsRegistry metrics;
  // Rebuild the client with the same registry the runner reports into, so
  // one report covers workflow counters and storage latencies together.
  fs::MemFsConfig fs_config;
  fs_config.metrics = &metrics;
  cluster.memfs = std::make_unique<fs::MemFs>(cluster.sim, cluster.network,
                                              *cluster.storage, fs_config);
  UniformScheduler scheduler;
  RunnerConfig config;
  config.nodes = 2;
  config.cores_per_node = 2;
  config.metrics = &metrics;
  Runner runner(cluster.sim, *cluster.memfs, scheduler, config);
  const auto result = runner.Run(Diamond());
  ASSERT_TRUE(result.status.ok()) << result.status;

  EXPECT_EQ(metrics.CounterValue("mtc.tasks_run"), 4u);
  EXPECT_EQ(metrics.CounterValue("mtc.task_failures"), 0u);
  EXPECT_EQ(metrics.CounterValue("mtc.bytes_read"), result.bytes_read);
  EXPECT_EQ(metrics.CounterValue("mtc.bytes_written"), result.bytes_written);
  // One duration sample per task, bounded by the makespan.
  EXPECT_EQ(metrics.Histogram("mtc.task").count(), 4u);
  EXPECT_LE(metrics.Histogram("mtc.task").max_nanos(),
            result.finished - result.started);
  // The storage layer recorded through the same registry.
  EXPECT_GT(metrics.Histogram("vfs.write").count(), 0u);
}

TEST(RunnerTest, FailedTaskCountedInMetrics) {
  MemFsCluster cluster(1);
  MetricsRegistry metrics;
  UniformScheduler scheduler;
  RunnerConfig config;
  config.nodes = 1;
  config.cores_per_node = 1;
  config.metrics = &metrics;
  Runner runner(cluster.sim, *cluster.memfs, scheduler, config);
  Workflow wf;
  wf.name = "broken";
  wf.tasks.push_back({"t", "s", {"/missing"}, {}, 0});
  const auto result = runner.Run(wf);
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(metrics.CounterValue("mtc.tasks_run"), 1u);
  EXPECT_EQ(metrics.CounterValue("mtc.task_failures"), 1u);
}

// --- Schedulers ---

TEST(UniformSchedulerTest, RoundRobinOverFreeNodes) {
  UniformScheduler scheduler;
  TaskSpec task;
  std::vector<std::uint32_t> free = {1, 1, 1};
  EXPECT_EQ(scheduler.Place(task, free), 0u);
  EXPECT_EQ(scheduler.Place(task, free), 1u);
  EXPECT_EQ(scheduler.Place(task, free), 2u);
  EXPECT_EQ(scheduler.Place(task, free), 0u);
}

TEST(UniformSchedulerTest, SkipsBusyNodes) {
  UniformScheduler scheduler;
  TaskSpec task;
  std::vector<std::uint32_t> free = {0, 1, 0};
  EXPECT_EQ(scheduler.Place(task, free), 1u);
  free = {0, 0, 0};
  EXPECT_EQ(scheduler.Place(task, free), std::nullopt);
}

class LocalitySchedulerTest : public ::testing::Test {
 protected:
  LocalitySchedulerTest()
      : network_(sim_, net::Das4Ipoib(4)), amfs_(sim_, network_, {}) {}

  void StoreFile(net::NodeId node, const std::string& path,
                 std::uint64_t size) {
    bool done = false;
    Status status;
    [](amfs::Amfs& fs, net::NodeId n, std::string p, std::uint64_t s,
       Status& out, bool& flag) -> sim::Task {
      fs::VfsContext ctx{n, 0};
      auto created = co_await fs.Create(ctx, p);
      if (created.ok()) {
        (void)co_await fs.Write(ctx, created.value(), Bytes::Synthetic(s, 1));
        out = co_await fs.Close(ctx, created.value());
      } else {
        out = created.status();
      }
      flag = true;
    }(amfs_, node, path, size, status, done);
    sim_.Run();
    ASSERT_TRUE(done && status.ok());
  }

  sim::Simulation sim_;
  net::FairShareNetwork network_;
  amfs::Amfs amfs_;
};

TEST_F(LocalitySchedulerTest, FollowsFirstInput) {
  StoreFile(2, "/data", KiB(10));
  LocalityScheduler scheduler(amfs_);
  TaskSpec task;
  task.name = "t";
  task.inputs = {"/data"};
  std::vector<std::uint32_t> free = {1, 1, 1, 1};
  EXPECT_EQ(scheduler.Place(task, free), 2u);
}

TEST_F(LocalitySchedulerTest, DefersWhenPreferredBusy) {
  StoreFile(1, "/busy", KiB(10));
  LocalityScheduler scheduler(amfs_);
  TaskSpec task;
  task.name = "t";
  task.inputs = {"/busy"};
  std::vector<std::uint32_t> free = {1, 0, 1, 1};
  EXPECT_EQ(scheduler.Place(task, free), std::nullopt);
}

TEST_F(LocalitySchedulerTest, PatienceEventuallyRunsAnywhere) {
  StoreFile(1, "/starve", KiB(10));
  LocalityScheduler scheduler(amfs_);
  scheduler.set_patience(3);
  TaskSpec task;
  task.name = "t";
  task.inputs = {"/starve"};
  std::vector<std::uint32_t> free = {1, 0, 1, 1};
  EXPECT_EQ(scheduler.Place(task, free), std::nullopt);
  EXPECT_EQ(scheduler.Place(task, free), std::nullopt);
  EXPECT_EQ(scheduler.Place(task, free), std::nullopt);
  EXPECT_TRUE(scheduler.Place(task, free).has_value());
}

TEST_F(LocalitySchedulerTest, AggregationGoesToDataHeavyNode) {
  StoreFile(3, "/agg0", KiB(10));
  StoreFile(3, "/agg1", KiB(10));
  StoreFile(0, "/agg2", KiB(10));
  LocalityScheduler scheduler(amfs_);
  TaskSpec task;
  task.name = "agg";
  task.inputs = {"/agg0", "/agg1", "/agg2"};
  std::vector<std::uint32_t> free = {1, 1, 1, 1};
  EXPECT_EQ(scheduler.Place(task, free), 3u);
}

TEST_F(LocalitySchedulerTest, NoInputTasksRoundRobin) {
  LocalityScheduler scheduler(amfs_);
  TaskSpec task;
  task.name = "src";
  std::vector<std::uint32_t> free = {1, 1, 1, 1};
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 4; ++i) seen.insert(*scheduler.Place(task, free));
  EXPECT_EQ(seen.size(), 4u);
}

// --- Workload generators ---

TEST(MontageTest, StructureMatchesPaper) {
  workloads::MontageParams params;
  params.degree = 6;
  params.task_scale = 64;  // keep the test small
  const Workflow wf = workloads::BuildMontage(params);

  std::unordered_map<std::string, int> stage_counts;
  for (const auto& task : wf.tasks) ++stage_counts[task.stage];

  const int images = stage_counts["stage_in"];
  EXPECT_EQ(stage_counts["mProjectPP"], images);
  EXPECT_EQ(stage_counts["mBackground"], images);
  EXPECT_GT(stage_counts["mDiffFit"], images);      // ~3 pairs per image
  EXPECT_LE(stage_counts["mDiffFit"], images * 3);
  EXPECT_EQ(stage_counts["mImgTbl"], 1);
  EXPECT_EQ(stage_counts["mConcatFit"], 1);
  EXPECT_EQ(stage_counts["mBgModel"], 1);
  EXPECT_EQ(stage_counts["mAdd"], 1);

  // Every mDiffFit task reads exactly two projected files.
  for (const auto& task : wf.tasks) {
    if (task.stage == "mDiffFit") {
      EXPECT_EQ(task.inputs.size(), 2u);
    }
  }
}

TEST(MontageTest, NoMissingProducers) {
  workloads::MontageParams params;
  params.task_scale = 128;
  const Workflow wf = workloads::BuildMontage(params);
  const auto producers = wf.Producers();
  for (const auto& task : wf.tasks) {
    for (const auto& input : task.inputs) {
      EXPECT_TRUE(producers.contains(input)) << input;
    }
  }
}

TEST(MontageTest, ScaleGrowsWithDegree) {
  EXPECT_EQ(workloads::MontageImageCount(6), 2488u);
  EXPECT_EQ(workloads::MontageImageCount(12), 2488u * 4);
  EXPECT_EQ(workloads::MontageImageCount(16), 2488u * 256 / 36);
  workloads::MontageParams small;
  small.degree = 6;
  small.task_scale = 32;
  workloads::MontageParams large;
  large.degree = 12;
  large.task_scale = 32;
  EXPECT_GT(workloads::BuildMontage(large).TotalOutputBytes(),
            workloads::BuildMontage(small).TotalOutputBytes() * 3);
}

TEST(BlastTest, StructureMatchesPaper) {
  workloads::BlastParams params;
  params.fragments = 32;
  params.queries_per_fragment = 4;
  const Workflow wf = workloads::BuildBlast(params);

  std::unordered_map<std::string, int> stage_counts;
  for (const auto& task : wf.tasks) ++stage_counts[task.stage];
  EXPECT_EQ(stage_counts["formatdb"], 32);
  EXPECT_EQ(stage_counts["blastall"], 128);
  EXPECT_EQ(stage_counts["merge"], 16);

  for (const auto& task : wf.tasks) {
    if (task.stage == "blastall") {
      EXPECT_EQ(task.inputs.size(), 2u);
    }
  }
  const auto producers = wf.Producers();
  for (const auto& task : wf.tasks) {
    for (const auto& input : task.inputs) {
      EXPECT_TRUE(producers.contains(input)) << input;
    }
  }
}

TEST(BlastTest, FragmentSizeTracksDatabaseSplit) {
  workloads::BlastParams das4;
  das4.fragments = 512;
  workloads::BlastParams ec2;
  ec2.fragments = 1024;
  // Same database, double the fragments -> half the fragment size; the total
  // runtime data stays comparable (the paper's EC2-vs-DAS4 argument).
  const auto das4_bytes = workloads::BuildBlast(das4).TotalOutputBytes();
  const auto ec2_bytes = workloads::BuildBlast(ec2).TotalOutputBytes();
  EXPECT_NEAR(static_cast<double>(das4_bytes) /
                  static_cast<double>(ec2_bytes),
              1.0, 0.25);
}

TEST(FileSeedTest, StableAndDistinct) {
  EXPECT_EQ(FileSeed("/a"), FileSeed("/a"));
  EXPECT_NE(FileSeed("/a"), FileSeed("/b"));
}

}  // namespace
}  // namespace memfs::mtc
