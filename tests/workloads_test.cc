// Tests for the workload layer: Testbed construction across all presets,
// the envelope engine's accounting rules, staging/seeding interactions, and
// generator parameter edge cases.
#include <gtest/gtest.h>

#include "common/units.h"
#include "workloads/blast.h"
#include "workloads/envelope.h"
#include "workloads/montage.h"
#include "workloads/testbed.h"

namespace memfs::workloads {
namespace {

using units::KiB;
using units::MiB;

// --- Testbed presets ---

class TestbedMatrixTest
    : public ::testing::TestWithParam<std::tuple<FsKind, Fabric>> {};

TEST_P(TestbedMatrixTest, ConstructsAndRunsEnvelopeWrite) {
  const auto [kind, fabric] = GetParam();
  TestbedConfig config;
  config.nodes = 4;
  config.fabric = fabric;
  Testbed bed(kind, config);
  EXPECT_EQ(bed.kind(), kind);
  EXPECT_EQ(&bed.vfs(), kind == FsKind::kAmfs
                            ? static_cast<fs::Vfs*>(bed.amfs())
                            : static_cast<fs::Vfs*>(bed.memfs()));

  EnvelopeParams params;
  params.nodes = 4;
  params.file_size = KiB(256);
  params.files_per_proc = 2;
  EnvelopeBench bench(bed.simulation(), bed.vfs(), params, bed.amfs());
  const auto write = bench.RunWrite();
  EXPECT_EQ(write.bytes, KiB(256) * 8);
  EXPECT_GT(write.BandwidthMBps(), 0.0);
  EXPECT_GT(bed.TotalMemoryUsed(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, TestbedMatrixTest,
    ::testing::Combine(::testing::Values(FsKind::kMemFs, FsKind::kAmfs,
                                         FsKind::kDiskPfs),
                       ::testing::Values(Fabric::kDas4Ipoib, Fabric::kDas4GbE,
                                         Fabric::kEc2TenGbE, Fabric::kRdma)),
    [](const auto& info) {
      std::string name = std::string(ToString(std::get<0>(info.param))) +
                         "_" +
                         std::string(ToString(std::get<1>(info.param)));
      // gtest parameterized names must be alphanumeric.
      std::erase_if(name, [](char c) { return c == '-'; });
      return name;
    });

TEST(TestbedTest, NestedMetricsRegistrySurvivesConstruction) {
  // Regression: a registry wired into TestbedConfig::memfs.metrics used to
  // be silently clobbered by the (null) TestbedConfig::metrics override, so
  // callers got an empty registry back. The override must only fire when a
  // top-level registry is actually supplied.
  MetricsRegistry nested;
  TestbedConfig config;
  config.nodes = 4;
  config.memfs.metrics = &nested;
  Testbed bed(FsKind::kMemFs, config);

  EnvelopeParams params;
  params.nodes = 4;
  params.file_size = KiB(64);
  params.files_per_proc = 1;
  EnvelopeBench bench(bed.simulation(), bed.vfs(), params, bed.amfs());
  bench.RunWrite();

  const auto vfs_write = nested.all().find("vfs.write");
  ASSERT_NE(vfs_write, nested.all().end());
  EXPECT_GT(vfs_write->second.count(), 0u);
  // The shared registry reaches the storage layer too (kv.* histograms).
  bool any_kv = false;
  for (const auto& [name, histogram] : nested.all()) {
    if (name.rfind("kv.", 0) == 0 && histogram.count() > 0) any_kv = true;
  }
  EXPECT_TRUE(any_kv);
}

TEST(TestbedTest, TopLevelMetricsOverrideStillWins) {
  // When both registries are supplied the top-level one takes precedence
  // (documented override semantics) and the nested one stays untouched.
  MetricsRegistry nested;
  MetricsRegistry top;
  TestbedConfig config;
  config.nodes = 4;
  config.memfs.metrics = &nested;
  config.metrics = &top;
  Testbed bed(FsKind::kMemFs, config);

  EnvelopeParams params;
  params.nodes = 4;
  params.file_size = KiB(64);
  params.files_per_proc = 1;
  EnvelopeBench bench(bed.simulation(), bed.vfs(), params, bed.amfs());
  bench.RunWrite();

  const auto vfs_write = top.all().find("vfs.write");
  ASSERT_NE(vfs_write, top.all().end());
  EXPECT_GT(vfs_write->second.count(), 0u);
  EXPECT_EQ(nested.all().find("vfs.write"), nested.all().end());
}

TEST(TestbedTest, WaterfillModelSelectable) {
  TestbedConfig config;
  config.nodes = 2;
  config.net_model = NetModel::kWaterfill;
  Testbed bed(FsKind::kMemFs, config);
  EXPECT_EQ(bed.network().config().nodes, 2u);
}

TEST(TestbedTest, StandbyNodesEnlargeFabricOnly) {
  TestbedConfig config;
  config.nodes = 4;
  config.standby_nodes = 2;
  Testbed bed(FsKind::kMemFs, config);
  EXPECT_EQ(bed.network().config().nodes, 6u);
  EXPECT_EQ(bed.storage()->server_count(), 4u);
}

TEST(TestbedTest, DiskPfsIsSlowerThanMemFs) {
  auto run_write = [](FsKind kind) {
    TestbedConfig config;
    config.nodes = 4;
    Testbed bed(kind, config);
    EnvelopeParams params;
    params.nodes = 4;
    params.file_size = MiB(1);
    params.files_per_proc = 2;
    EnvelopeBench bench(bed.simulation(), bed.vfs(), params, nullptr);
    return bench.RunWrite().BandwidthMBps();
  };
  EXPECT_GT(run_write(FsKind::kMemFs), run_write(FsKind::kDiskPfs) * 4);
}

TEST(TestbedTest, RdmaIsFasterThanIpoib) {
  auto run_write = [](Fabric fabric) {
    TestbedConfig config;
    config.nodes = 4;
    config.fabric = fabric;
    Testbed bed(FsKind::kMemFs, config);
    EnvelopeParams params;
    params.nodes = 4;
    params.file_size = MiB(4);
    params.files_per_proc = 2;
    EnvelopeBench bench(bed.simulation(), bed.vfs(), params, nullptr);
    return bench.RunWrite().BandwidthMBps();
  };
  EXPECT_GT(run_write(Fabric::kRdma), run_write(Fabric::kDas4Ipoib) * 2);
}

// --- Envelope accounting rules ---

TEST(EnvelopeAccountingTest, PerFileJobOverheadSlowsDataPhasesOnly) {
  auto run = [](sim::SimTime overhead) {
    TestbedConfig config;
    config.nodes = 4;
    Testbed bed(FsKind::kMemFs, config);
    EnvelopeParams params;
    params.nodes = 4;
    params.file_size = KiB(64);
    params.files_per_proc = 4;
    params.per_file_job_overhead = overhead;
    EnvelopeBench bench(bed.simulation(), bed.vfs(), params, nullptr);
    const auto write = bench.RunWrite();
    const auto create = bench.RunCreate(16);
    return std::pair{write.BandwidthMBps(), create.OpsPerSec()};
  };
  const auto [bw_free, create_free] = run(0);
  const auto [bw_taxed, create_taxed] = run(units::Millis(1));
  EXPECT_GT(bw_free, bw_taxed * 2);              // data phases pay
  EXPECT_NEAR(create_free, create_taxed,
              create_free * 0.01);               // metadata phases do not
}

TEST(EnvelopeAccountingTest, OpsCountIoCalls) {
  TestbedConfig config;
  config.nodes = 2;
  Testbed bed(FsKind::kMemFs, config);
  EnvelopeParams params;
  params.nodes = 2;
  params.file_size = KiB(256);
  params.files_per_proc = 3;
  params.io_block = KiB(64);  // 4 calls per file
  EnvelopeBench bench(bed.simulation(), bed.vfs(), params, nullptr);
  const auto write = bench.RunWrite();
  EXPECT_EQ(write.ops, 2u * 3u * 4u);
  const auto read = bench.RunRead11();
  // Reads need one extra call to observe EOF when size % block == 0.
  EXPECT_EQ(read.ops, 2u * 3u * 4u);
}

TEST(EnvelopeAccountingTest, N1SpanIncludesMulticastOnlyForBandwidth) {
  TestbedConfig config;
  config.nodes = 4;
  Testbed bed(FsKind::kAmfs, config);
  EnvelopeParams params;
  params.nodes = 4;
  params.file_size = MiB(1);
  params.files_per_proc = 1;
  EnvelopeBench bench(bed.simulation(), bed.vfs(), params, bed.amfs());
  (void)bench.RunWrite();
  const auto n1 = bench.RunReadN1();
  EXPECT_GT(n1.span, n1.work_span);
  EXPECT_GT(n1.OpsPerSec(), 0.0);
  EXPECT_LT(n1.BandwidthMBps(), n1.WorkBandwidthMBps() + 1e9);
}

// --- Generator edge cases ---

TEST(GeneratorEdgeTest, MontageMinimumSize) {
  MontageParams params;
  params.degree = 6;
  params.task_scale = 100000;  // absurd divisor -> floor of 4 images
  const auto wf = BuildMontage(params);
  int images = 0;
  for (const auto& task : wf.tasks) {
    images += task.stage == "stage_in" ? 1 : 0;
  }
  EXPECT_EQ(images, 4);
  const auto producers = wf.Producers();
  for (const auto& task : wf.tasks) {
    for (const auto& input : task.inputs) {
      EXPECT_TRUE(producers.contains(input));
    }
  }
}

TEST(GeneratorEdgeTest, MontageSizeScaleDividesBytes) {
  MontageParams coarse;
  coarse.task_scale = 64;
  MontageParams fine = coarse;
  fine.size_scale = 8;
  const auto full = BuildMontage(coarse).TotalOutputBytes();
  const auto scaled = BuildMontage(fine).TotalOutputBytes();
  EXPECT_NEAR(static_cast<double>(full) / static_cast<double>(scaled), 8.0,
              0.5);
}

TEST(GeneratorEdgeTest, BlastMinimumFragments) {
  BlastParams params;
  params.fragments = 512;
  params.task_scale = 100000;
  const auto wf = BuildBlast(params);
  int fragments = 0;
  for (const auto& task : wf.tasks) {
    fragments += task.stage == "formatdb" ? 1 : 0;
  }
  EXPECT_EQ(fragments, 2);
}

TEST(GeneratorEdgeTest, BlastMergeCoversAllResults) {
  BlastParams params;
  params.fragments = 16;
  params.queries_per_fragment = 4;
  params.merges = 8;
  const auto wf = BuildBlast(params);
  int results_consumed = 0;
  int results_produced = 0;
  for (const auto& task : wf.tasks) {
    if (task.stage == "merge") {
      results_consumed += static_cast<int>(task.inputs.size());
    }
    if (task.stage == "blastall") ++results_produced;
  }
  EXPECT_EQ(results_consumed, results_produced);
}

TEST(GeneratorEdgeTest, WorkflowNamesAreUnique) {
  MontageParams params;
  params.task_scale = 64;
  const auto wf = BuildMontage(params);
  std::set<std::string> names;
  for (const auto& task : wf.tasks) names.insert(task.name);
  EXPECT_EQ(names.size(), wf.tasks.size());
}

}  // namespace
}  // namespace memfs::workloads
