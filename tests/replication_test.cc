// Tests for the fault-tolerance extension (§3.2.5, implemented as the
// paper's future work): replicated stripes and metadata, failover reads,
// server-failure injection, and the predicted capacity/traffic penalties.
#include <gtest/gtest.h>

#include "common/units.h"
#include "kvstore/kv_cluster.h"
#include "memfs/memfs.h"
#include "mtc/staging.h"
#include "net/fluid_network.h"
#include "test_util.h"

namespace memfs::fs {
namespace {

using memfs::testing::Await;
using units::KiB;
using units::MiB;

class ReplicationTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kNodes = 4;

  void Recreate(std::uint32_t replication, bool degraded_writes = true) {
    fs_.reset();
    storage_.reset();
    network_.reset();
    sim_ = std::make_unique<sim::Simulation>();
    network_ = std::make_unique<net::FairShareNetwork>(
        *sim_, net::Das4Ipoib(kNodes));
    storage_ = std::make_unique<kv::KvCluster>(
        *sim_, *network_, std::vector<net::NodeId>{0, 1, 2, 3});
    MemFsConfig config;
    config.replication = replication;
    config.degraded_writes = degraded_writes;
    fs_ = std::make_unique<MemFs>(*sim_, *network_, *storage_, config);
  }

  Status WriteFile(VfsContext ctx, const std::string& path,
                   const Bytes& data) {
    auto created = Await(*sim_, fs_->Create(ctx, path));
    if (!created.ok()) return created.status();
    Status s = Await(*sim_, fs_->Write(ctx, created.value(), data));
    if (!s.ok()) return s;
    return Await(*sim_, fs_->Close(ctx, created.value()));
  }

  Result<Bytes> ReadFile(VfsContext ctx, const std::string& path) {
    auto opened = Await(*sim_, fs_->Open(ctx, path));
    if (!opened.ok()) return opened.status();
    Bytes out;
    while (true) {
      auto chunk = Await(
          *sim_, fs_->Read(ctx, opened.value(), out.size(), MiB(1)));
      if (!chunk.ok()) return chunk.status();
      if (chunk->empty()) break;
      out.Append(*chunk);
    }
    Status closed = Await(*sim_, fs_->Close(ctx, opened.value()));
    if (!closed.ok()) return closed;
    return out;
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<net::FairShareNetwork> network_;
  std::unique_ptr<kv::KvCluster> storage_;
  std::unique_ptr<MemFs> fs_;
};

TEST_F(ReplicationTest, RoundTripWithReplication) {
  Recreate(2);
  const Bytes data = Bytes::Synthetic(MiB(2), 11);
  ASSERT_TRUE(WriteFile({0, 0}, "/r2", data).ok());
  auto back = ReadFile({2, 0}, "/r2");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ContentEquals(data));
}

TEST_F(ReplicationTest, StorageDoublesWithReplicationTwo) {
  Recreate(1);
  ASSERT_TRUE(WriteFile({0, 0}, "/a", Bytes::Synthetic(MiB(2), 1)).ok());
  const auto single = storage_->total_memory_used();

  Recreate(2);
  ASSERT_TRUE(WriteFile({0, 0}, "/a", Bytes::Synthetic(MiB(2), 1)).ok());
  const auto doubled = storage_->total_memory_used();
  // The paper's predicted cost: capacity shrinks n-fold.
  EXPECT_NEAR(static_cast<double>(doubled),
              2.0 * static_cast<double>(single),
              0.05 * static_cast<double>(doubled));
}

TEST_F(ReplicationTest, NetworkTrafficDoubles) {
  Recreate(1);
  ASSERT_TRUE(WriteFile({0, 0}, "/t", Bytes::Synthetic(MiB(4), 2)).ok());
  const auto single = network_->total_bytes();

  Recreate(2);
  ASSERT_TRUE(WriteFile({0, 0}, "/t", Bytes::Synthetic(MiB(4), 2)).ok());
  const auto doubled = network_->total_bytes();
  // "n times more data will flow through the network when writing files."
  EXPECT_GT(doubled, single * 18 / 10);
  EXPECT_LT(doubled, single * 22 / 10);
}

TEST_F(ReplicationTest, ReadsSurviveSingleServerFailure) {
  Recreate(2);
  const Bytes data = Bytes::Synthetic(MiB(3), 21);
  ASSERT_TRUE(WriteFile({0, 0}, "/ft", data).ok());

  // Kill each server in turn; every read must still succeed (any single
  // failure leaves one replica of every stripe and record).
  for (std::uint32_t victim = 0; victim < kNodes; ++victim) {
    storage_->SetServerDown(victim, true);
    auto back = ReadFile({(victim + 1) % kNodes, 0}, "/ft");
    ASSERT_TRUE(back.ok()) << "victim " << victim << ": " << back.status();
    EXPECT_TRUE(back->ContentEquals(data)) << victim;
    storage_->SetServerDown(victim, false);
  }
  EXPECT_GT(fs_->stats().replica_failovers, 0u);
}

TEST_F(ReplicationTest, NoReplicationLosesDataOnFailure) {
  Recreate(1);
  ASSERT_TRUE(WriteFile({0, 0}, "/fragile", Bytes::Synthetic(MiB(3), 5)).ok());
  // Some server holds stripes of this file; killing it breaks the read.
  bool any_failure = false;
  for (std::uint32_t victim = 0; victim < kNodes; ++victim) {
    storage_->SetServerDown(victim, true);
    auto back = ReadFile({(victim + 1) % kNodes, 0}, "/fragile");
    if (!back.ok() || back->size() != MiB(3)) any_failure = true;
    storage_->SetServerDown(victim, false);
  }
  EXPECT_TRUE(any_failure);
}

TEST_F(ReplicationTest, MetadataSurvivesFailure) {
  Recreate(2);
  ASSERT_TRUE(Await(*sim_, fs_->Mkdir({0, 0}, "/d")).ok());
  ASSERT_TRUE(WriteFile({1, 0}, "/d/x", Bytes::Copy("payload")).ok());
  for (std::uint32_t victim = 0; victim < kNodes; ++victim) {
    storage_->SetServerDown(victim, true);
    auto info = Await(*sim_, fs_->Stat({0, 0}, "/d/x"));
    ASSERT_TRUE(info.ok()) << victim;
    EXPECT_EQ(info->size, 7u);
    auto listing = Await(*sim_, fs_->ReadDir({2, 0}, "/d"));
    ASSERT_TRUE(listing.ok()) << victim;
    EXPECT_EQ(listing->size(), 1u);
    storage_->SetServerDown(victim, false);
  }
}

TEST_F(ReplicationTest, WritesDegradeGracefullyWhenReplicaDown) {
  Recreate(2);
  storage_->SetServerDown(1, true);
  // Graceful degradation (the default): a replica set that reaches at least
  // one live server acknowledges the write and counts it as degraded.
  const Bytes data = Bytes::Synthetic(MiB(4), 9);
  ASSERT_TRUE(WriteFile({0, 0}, "/wf", data).ok());
  EXPECT_GT(fs_->stats().degraded_writes, 0u);

  // And the surviving copies are complete: bring the victim back (its data
  // intact but missing the degraded stripes) and read everything.
  storage_->SetServerDown(1, false);
  auto back = ReadFile({2, 0}, "/wf");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ContentEquals(data));
}

TEST_F(ReplicationTest, StrictModeWritesFailWhenReplicaDown) {
  Recreate(2, /*degraded_writes=*/false);
  storage_->SetServerDown(1, true);
  // Strict all-replica acks: a large file touching all servers must fail.
  EXPECT_FALSE(WriteFile({0, 0}, "/wf", Bytes::Synthetic(MiB(4), 9)).ok());
  EXPECT_EQ(fs_->stats().degraded_writes, 0u);
}

TEST_F(ReplicationTest, AllReplicasDownReturnsUnavailable) {
  Recreate(2);
  ASSERT_TRUE(WriteFile({0, 0}, "/gone_dark", Bytes::Synthetic(MiB(1), 8)).ok());
  for (std::uint32_t s = 0; s < kNodes; ++s) storage_->SetServerDown(s, true);
  // Nothing is reachable: the failure must surface as UNAVAILABLE ("cannot
  // tell"), never NOT_FOUND ("definitively absent").
  auto info = Await(*sim_, fs_->Stat({0, 0}, "/gone_dark"));
  EXPECT_EQ(info.status().code(), ErrorCode::kUnavailable);
  auto opened = Await(*sim_, fs_->Open({1, 0}, "/gone_dark"));
  EXPECT_EQ(opened.status().code(), ErrorCode::kUnavailable);
}

TEST_F(ReplicationTest, FailoverReadsRepairWipedReplica) {
  Recreate(2);
  const Bytes data = Bytes::Synthetic(MiB(2), 13);
  ASSERT_TRUE(WriteFile({0, 0}, "/heal", data).ok());

  // Crash server 1 and restart it as an empty process: half the replica
  // pairs lost a copy.
  storage_->SetServerDown(1, true);
  storage_->SetServerDown(1, false, /*wipe_on_restart=*/true);
  ASSERT_EQ(storage_->server(1).memory_used(), 0u);

  // Reads fail over to the surviving replica and reinstall the lost copy.
  auto back = ReadFile({2, 0}, "/heal");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ContentEquals(data));
  sim_->Run();  // drain the asynchronous repair writes
  EXPECT_GT(fs_->stats().read_repairs, 0u);
  EXPECT_GT(storage_->server(1).memory_used(), 0u);
}

TEST_F(ReplicationTest, UnlinkRemovesAllReplicas) {
  Recreate(2);
  ASSERT_TRUE(WriteFile({0, 0}, "/gone", Bytes::Synthetic(MiB(2), 3)).ok());
  EXPECT_GT(storage_->total_memory_used(), MiB(4) - KiB(1));
  ASSERT_TRUE(Await(*sim_, fs_->Unlink({1, 0}, "/gone")).ok());
  // Only the root/dir records remain.
  EXPECT_LT(storage_->total_memory_used(), KiB(1));
}

TEST_F(ReplicationTest, ReplicationCappedAtServerCount) {
  Recreate(16);  // more replicas than servers
  const Bytes data = Bytes::Synthetic(KiB(700), 4);
  ASSERT_TRUE(WriteFile({0, 0}, "/cap", data).ok());
  auto back = ReadFile({1, 0}, "/cap");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ContentEquals(data));
}

TEST_F(ReplicationTest, DownServerTimesOutClients) {
  Recreate(1);
  storage_->SetServerDown(2, true);
  const auto t0 = sim_->now();
  auto result = Await(*sim_, storage_->Get(0, 2, "anything"));
  EXPECT_EQ(result.status().code(), ErrorCode::kUnavailable);
  EXPECT_GE(sim_->now() - t0, units::Millis(1));
  // The client retried (with backoff) before giving up.
  EXPECT_GT(storage_->stats().retries, 0u);
}

TEST_F(ReplicationTest, StageOutSurvivesRuntimeServerFailure) {
  // End-to-end payoff: results written with replication survive a runtime
  // server crash long enough to be staged out to permanent storage.
  Recreate(2);
  // A separate, healthy "permanent" deployment on the same fabric.
  kv::KvCluster permanent_storage(*sim_, *network_,
                                  std::vector<net::NodeId>{0, 1});
  MemFs permanent(*sim_, *network_, permanent_storage, MemFsConfig{});

  std::vector<std::string> results;
  for (int f = 0; f < 6; ++f) {
    const std::string path = "/result_" + std::to_string(f);
    ASSERT_TRUE(WriteFile({0, 0}, path, Bytes::Synthetic(MiB(1), f)).ok());
    results.push_back(path);
  }

  storage_->SetServerDown(1, true);  // runtime server dies post-workflow

  mtc::Stager stager(*sim_, {.streams = 4, .nodes = kNodes});
  const auto report = stager.CopyFiles(*fs_, permanent, results);
  ASSERT_TRUE(report.status.ok()) << report.status;
  EXPECT_EQ(report.files, 6u);
  EXPECT_EQ(report.bytes, MiB(6));
  EXPECT_GT(fs_->stats().replica_failovers, 0u);

  // And the archived copies are intact.
  for (int f = 0; f < 6; ++f) {
    bool verified = false;
    [](fs::Vfs& vfs, std::string p, std::uint64_t seed,
       bool& flag) -> sim::Task {
      fs::VfsContext ctx{2, 0};
      auto opened = co_await vfs.Open(ctx, p);
      if (!opened.ok()) co_return;
      auto data = co_await vfs.Read(ctx, opened.value(), 0, MiB(2));
      (void)co_await vfs.Close(ctx, opened.value());
      flag = data.ok() &&
             data->ContentEquals(Bytes::Synthetic(MiB(1), seed));
    }(permanent, "/result_" + std::to_string(f),
      static_cast<std::uint64_t>(f), verified);
    sim_->Run();
    EXPECT_TRUE(verified) << f;
  }
}

}  // namespace
}  // namespace memfs::fs
