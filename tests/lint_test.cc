// memfs_lint engine tests: one fixture per rule plus suppression handling,
// exercised through the in-memory Linter::AddSource API (the same engine the
// `lint` ctest runs over src/ via the CLI).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint.h"

namespace memfs::lint {
namespace {

std::vector<Finding> Lint(const std::string& path,
                          const std::string& contents,
                          bool include_suppressed = false) {
  Linter linter;
  linter.AddSource(path, contents);
  return linter.Run(include_suppressed);
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  int count = 0;
  for (const Finding& finding : findings) {
    if (finding.rule == rule) ++count;
  }
  return count;
}

TEST(LintIgnoredStatusTest, BareStatusCallIsFlagged) {
  const auto findings = Lint("src/x/use.cc",
                             "Status Push(int v);\n"
                             "void Caller() {\n"
                             "  Push(1);\n"
                             "}\n");
  ASSERT_EQ(CountRule(findings, "ignored-status"), 1);
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("'Push'"), std::string::npos);
}

TEST(LintIgnoredStatusTest, ConsumedStatusIsNotFlagged) {
  const auto findings = Lint("src/x/use.cc",
                             "Status Push(int v);\n"
                             "Status Caller() {\n"
                             "  Status s = Push(1);\n"
                             "  if (!s.ok()) return s;\n"
                             "  return Push(2);\n"
                             "}\n");
  EXPECT_EQ(CountRule(findings, "ignored-status"), 0);
}

TEST(LintIgnoredStatusTest, AwaitedStatusFutureIsFlagged) {
  const auto findings = Lint("src/x/use.cc",
                             "Future<Status> Send(int v);\n"
                             "void Caller() {\n"
                             "  co_await Send(2);\n"
                             "}\n");
  ASSERT_EQ(CountRule(findings, "ignored-status"), 1);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintIgnoredStatusTest, AwaitedVoidFutureIsNotFlaggedButDroppedOneIs) {
  // Awaiting a VoidFuture consumes it correctly (the payload is Done);
  // dropping it outright is a fire-and-forget without a join.
  const std::string source =
      "VoidFuture Ping();\n"
      "void Caller() {\n"
      "  co_await Ping();\n"
      "  Ping();\n"
      "}\n";
  const auto findings = Lint("src/x/use.cc", source);
  ASSERT_EQ(CountRule(findings, "ignored-status"), 1);
  EXPECT_EQ(findings[0].line, 4);
}

TEST(LintIgnoredStatusTest, VoidOverloadDisablesTheName) {
  // `Reset` is declared void-returning somewhere; token-level linting cannot
  // disambiguate overloads, so the name is never flagged.
  const auto findings = Lint("src/x/use.cc",
                             "Status Reset();\n"
                             "void Reset(int hard);\n"
                             "void Caller() {\n"
                             "  Reset();\n"
                             "}\n");
  EXPECT_EQ(CountRule(findings, "ignored-status"), 0);
}

TEST(LintAcquireReleaseTest, AcquireWithoutReleaseIsFlagged) {
  const auto findings = Lint("src/x/hold.cc",
                             "void Grab(Sem& sem) {\n"
                             "  sem.Acquire();\n"
                             "  DoWork();\n"
                             "}\n");
  ASSERT_EQ(CountRule(findings, "acquire-release"), 1);
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintAcquireReleaseTest, BalancedPairIsNotFlagged) {
  const auto findings = Lint("src/x/hold.cc",
                             "void Grab(Sem& sem) {\n"
                             "  sem.Acquire();\n"
                             "  DoWork();\n"
                             "  sem.Release();\n"
                             "}\n");
  EXPECT_EQ(CountRule(findings, "acquire-release"), 0);
}

TEST(LintNondeterminismTest, BannedSourcesAreFlagged) {
  const auto findings = Lint("src/x/entropy.cc",
                             "int A() { return std::rand(); }\n"
                             "int B() { return time(nullptr); }\n"
                             "std::random_device Dev();\n");
  EXPECT_EQ(CountRule(findings, "nondeterminism"), 3);
}

TEST(LintNondeterminismTest, WallClockAllowedUnderSimOnly) {
  const std::string source =
      "void Tick() { auto t = std::chrono::steady_clock::now(); }\n";
  EXPECT_EQ(CountRule(Lint("src/net/clock.cc", source), "nondeterminism"), 1);
  EXPECT_EQ(CountRule(Lint("src/sim/clock.cc", source), "nondeterminism"), 0);
}

TEST(LintHeaderHygieneTest, MissingPragmaOnceIsFlaggedInHeadersOnly) {
  const std::string source = "int x;\n";
  const auto header = Lint("src/x/thing.h", source);
  ASSERT_EQ(CountRule(header, "pragma-once"), 1);
  EXPECT_EQ(header[0].line, 1);
  EXPECT_EQ(CountRule(Lint("src/x/thing.cc", source), "pragma-once"), 0);
  EXPECT_EQ(CountRule(Lint("src/x/ok.h", "#pragma once\nint x;\n"),
                      "pragma-once"),
            0);
}

TEST(LintHeaderHygieneTest, UsingNamespaceInHeaderIsFlagged) {
  const auto findings = Lint("src/x/leak.h",
                             "#pragma once\n"
                             "using namespace std;\n");
  ASSERT_EQ(CountRule(findings, "using-namespace"), 1);
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintSuppressionTest, AllowCommentSuppressesNextLine) {
  const std::string source =
      "Status Push(int v);\n"
      "void Caller() {\n"
      "  // lint: allow(ignored-status) fire-and-forget by design\n"
      "  Push(1);\n"
      "}\n";
  EXPECT_TRUE(Lint("src/x/use.cc", source).empty());

  // With include_suppressed the finding is still visible and marked.
  const auto all = Lint("src/x/use.cc", source, /*include_suppressed=*/true);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(all[0].suppressed);
  EXPECT_NE(Format(all[0]).find("[suppressed]"), std::string::npos);
}

TEST(LintSuppressionTest, SuppressionIsRuleSpecific) {
  // An allow() for a different rule does not mute the finding.
  const auto findings = Lint("src/x/use.cc",
                             "Status Push(int v);\n"
                             "void Caller() {\n"
                             "  // lint: allow(acquire-release) wrong rule\n"
                             "  Push(1);\n"
                             "}\n");
  EXPECT_EQ(CountRule(findings, "ignored-status"), 1);
}

TEST(LintSuppressionTest, CommaSeparatedRuleListIsHonored) {
  const auto findings =
      Lint("src/x/use.cc",
           "Status Push(int v);\n"
           "void Caller(Sem& sem) {\n"
           "  // lint: allow(ignored-status, acquire-release) protocol\n"
           "  Push(1);\n"
           "}\n");
  EXPECT_EQ(CountRule(findings, "ignored-status"), 0);
}

TEST(LintSuppressionAuditTest, UnknownRuleNameIsFlagged) {
  const auto findings = Lint("src/x/use.cc",
                             "void Caller() {\n"
                             "  // lint: allow(ignored-stauts) typo\n"
                             "  DoWork();\n"
                             "}\n");
  ASSERT_EQ(CountRule(findings, "allow-unknown"), 1);
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("'ignored-stauts'"), std::string::npos);
}

TEST(LintSuppressionAuditTest, KnownRuleNamesPassTheAudit) {
  const auto findings =
      Lint("src/x/use.cc",
           "Status Push(int v);\n"
           "void Caller(Sem& sem) {\n"
           "  // lint: allow(ignored-status, acquire-release) protocol\n"
           "  Push(1);\n"
           "}\n");
  EXPECT_EQ(CountRule(findings, "allow-unknown"), 0);
}

TEST(LintSuppressionAuditTest, MixedListFlagsOnlyTheUnknownRule) {
  const auto findings = Lint("src/x/use.cc",
                             "Status Push(int v);\n"
                             "void Caller() {\n"
                             "  // lint: allow(ignored-status, no-such-rule)\n"
                             "  Push(1);\n"
                             "}\n");
  EXPECT_EQ(CountRule(findings, "ignored-status"), 0);
  ASSERT_EQ(CountRule(findings, "allow-unknown"), 1);
  EXPECT_NE(findings[0].message.find("'no-such-rule'"), std::string::npos);
}

TEST(LintFormatTest, FindingsAreMachineReadable) {
  const auto findings = Lint("src/x/thing.h", "int x;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(Format(findings[0]).rfind("src/x/thing.h:1: pragma-once:", 0), 0u);
}

}  // namespace
}  // namespace memfs::lint
