// Unit tests for src/common: payloads, stats, RNG, status, table output.
#include <sstream>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table.h"
#include "common/units.h"

namespace memfs {
namespace {

// --- Status / Result ---

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = status::NotFound("missing file");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing file");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(ToString(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = status::NoSpace("full");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNoSpace);
}

// --- Units ---

TEST(UnitsTest, ByteHelpers) {
  EXPECT_EQ(units::KiB(512), 512ull * 1024);
  EXPECT_EQ(units::MiB(8), 8ull << 20);
  EXPECT_EQ(units::GB(1), 1000000000ull);
}

TEST(UnitsTest, TransferNanos) {
  // 1 GB at 1 GB/s = 1 second.
  EXPECT_EQ(units::TransferNanos(units::GB(1), units::GB(1)),
            units::Seconds(1));
  // Nonzero transfers never take zero time.
  EXPECT_GE(units::TransferNanos(1, units::GB(100)), 1u);
  EXPECT_EQ(units::TransferNanos(0, units::GB(1)), 0u);
}

TEST(UnitsTest, BandwidthReporting) {
  EXPECT_DOUBLE_EQ(units::MBps(units::MB(500), units::Seconds(1)), 500.0);
  EXPECT_DOUBLE_EQ(units::MBps(units::MB(500), units::Millis(500)), 1000.0);
}

// --- Rng ---

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
}

TEST(RngTest, BelowIsInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(17), 17u);
}

TEST(RngTest, BelowCoversRangeRoughlyUniformly) {
  Rng rng(11);
  int buckets[8] = {0};
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.Below(8)];
  for (int b : buckets) {
    EXPECT_GT(b, kDraws / 8 * 0.9);
    EXPECT_LT(b, kDraws / 8 * 1.1);
  }
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(5);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.Next() == child.Next();
  EXPECT_LT(same, 2);
}

// --- Bytes: real payloads ---

TEST(BytesTest, CopyRoundTrips) {
  Bytes b = Bytes::Copy("hello world");
  EXPECT_TRUE(b.is_real());
  EXPECT_EQ(b.size(), 11u);
  EXPECT_EQ(b.view(), "hello world");
}

TEST(BytesTest, EmptyPayloadsAreContentEqual) {
  EXPECT_TRUE(Bytes().ContentEquals(Bytes::Copy("")));
}

TEST(BytesTest, EqualContentEqualFingerprint) {
  EXPECT_TRUE(Bytes::Copy("abcdef").ContentEquals(Bytes::Copy("abcdef")));
  EXPECT_FALSE(Bytes::Copy("abcdef").ContentEquals(Bytes::Copy("abcdeg")));
}

TEST(BytesTest, FingerprintIsPositionSensitive) {
  // Same multiset of bytes, different order.
  EXPECT_FALSE(Bytes::Copy("ab").ContentEquals(Bytes::Copy("ba")));
}

TEST(BytesTest, RealSliceMatchesStringSlice) {
  Bytes b = Bytes::Copy("0123456789");
  Bytes s = b.Slice(3, 4);
  EXPECT_EQ(s.view(), "3456");
  EXPECT_TRUE(s.ContentEquals(Bytes::Copy("3456")));
}

TEST(BytesTest, SliceClampsAtEnd) {
  Bytes b = Bytes::Copy("0123456789");
  EXPECT_EQ(b.Slice(8, 100).size(), 2u);
  EXPECT_TRUE(b.Slice(20, 5).empty());
}

TEST(BytesTest, AppendEqualsConcatenation) {
  Bytes left = Bytes::Copy("foo");
  left.Append(Bytes::Copy("bar"));
  EXPECT_TRUE(left.ContentEquals(Bytes::Copy("foobar")));
  EXPECT_EQ(left.view(), "foobar");
}

TEST(BytesTest, SplitInvarianceReal) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  Bytes whole = Bytes::Copy(data);
  for (std::size_t cut = 0; cut <= data.size(); ++cut) {
    Bytes rebuilt = whole.Slice(0, cut);
    rebuilt.Append(whole.Slice(cut, data.size() - cut));
    EXPECT_TRUE(rebuilt.ContentEquals(whole)) << "cut at " << cut;
  }
}

TEST(BytesTest, PatternIsDeterministic) {
  Bytes a = Bytes::Pattern(1000, 42);
  Bytes b = Bytes::Pattern(1000, 42);
  EXPECT_TRUE(a.ContentEquals(b));
  EXPECT_EQ(a.view(), b.view());
  EXPECT_FALSE(a.ContentEquals(Bytes::Pattern(1000, 43)));
}

// --- Bytes: synthetic payloads ---

TEST(BytesTest, SyntheticCarriesSizeWithoutStorage) {
  Bytes s = Bytes::Synthetic(units::GiB(100), 7);
  EXPECT_FALSE(s.is_real());
  EXPECT_EQ(s.size(), units::GiB(100));
  EXPECT_EQ(s.StoredSize(), units::GiB(100));
}

TEST(BytesTest, SyntheticDeterministic) {
  EXPECT_TRUE(Bytes::Synthetic(12345, 9).ContentEquals(
      Bytes::Synthetic(12345, 9)));
  EXPECT_FALSE(Bytes::Synthetic(12345, 9).ContentEquals(
      Bytes::Synthetic(12345, 10)));
  EXPECT_FALSE(Bytes::Synthetic(12345, 9).ContentEquals(
      Bytes::Synthetic(12346, 9)));
}

TEST(BytesTest, SyntheticSplitInvariance) {
  const std::uint64_t seed = 77;
  Bytes whole = Bytes::Synthetic(1 << 20, seed);
  for (std::size_t cut : {0ul, 1ul, 4096ul, 524288ul, (1ul << 20)}) {
    Bytes rebuilt = whole.Slice(0, cut);
    rebuilt.Append(whole.Slice(cut, (1ul << 20) - cut));
    EXPECT_TRUE(rebuilt.ContentEquals(whole)) << "cut at " << cut;
  }
}

TEST(BytesTest, SyntheticManyPieceReassembly) {
  const std::uint64_t seed = 123;
  const std::size_t total = 300000;
  Bytes whole = Bytes::Synthetic(total, seed);
  Bytes rebuilt;
  std::size_t offset = 0;
  // Uneven piece sizes, like a write buffer carving stripes.
  for (std::size_t piece = 1; offset < total; piece = piece * 3 + 7) {
    rebuilt.Append(whole.Slice(offset, piece));
    offset += piece;
  }
  EXPECT_TRUE(rebuilt.ContentEquals(whole));
}

TEST(BytesTest, SyntheticReorderDetected) {
  Bytes whole = Bytes::Synthetic(1000, 5);
  Bytes swapped = whole.Slice(500, 500);
  swapped.Append(whole.Slice(0, 500));
  EXPECT_EQ(swapped.size(), whole.size());
  EXPECT_FALSE(swapped.ContentEquals(whole));
}

TEST(BytesTest, SyntheticSliceOfSliceMatchesDirectSlice) {
  Bytes whole = Bytes::Synthetic(100000, 31);
  Bytes mid = whole.Slice(1000, 50000);
  EXPECT_TRUE(mid.Slice(200, 300).ContentEquals(whole.Slice(1200, 300)));
}

TEST(BytesTest, MixedAppendDegradesToSynthetic) {
  Bytes b = Bytes::Copy("header");
  b.Append(Bytes::Synthetic(100, 3));
  EXPECT_FALSE(b.is_real());
  EXPECT_EQ(b.size(), 106u);
  // Same construction yields the same fingerprint.
  Bytes c = Bytes::Copy("header");
  c.Append(Bytes::Synthetic(100, 3));
  EXPECT_TRUE(b.ContentEquals(c));
}

// --- RunningStats / Samples ---

TEST(StatsTest, RunningStatsBasics) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
}

TEST(StatsTest, CvOfUniformDataIsZero) {
  RunningStats s;
  for (int i = 0; i < 10; ++i) s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(StatsTest, SampleQuantiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_NEAR(s.Median(), 50.5, 1e-9);
  EXPECT_NEAR(s.Quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.Quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(s.Quantile(0.9), 90.1, 1e-9);
}

// --- Table ---

TEST(TableTest, TextOutputIsAligned) {
  Table t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "2.5"});
  std::ostringstream os;
  t.PrintText(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Int(1234), "1234");
}

}  // namespace
}  // namespace memfs
