// Tests for the elastic scale-out extension (§5's future work): ring
// epochs, AddStorageServer, placement of new vs old files, interaction with
// ketama's minimal remapping, and the live-membership machinery (KetamaRing
// deltas, HandoffGate, Membership routing, Migrator end-to-end).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "hash/distributor.h"
#include "kvstore/kv_cluster.h"
#include "kvstore/membership.h"
#include "kvstore/migrator.h"
#include "memfs/memfs.h"
#include "memfs/metadata.h"
#include "memfs/striper.h"
#include "net/fluid_network.h"
#include "sim/task.h"
#include "test_util.h"

namespace memfs::fs {
namespace {

using memfs::testing::Await;
using units::KiB;
using units::MiB;

class ElasticTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kInitial = 4;
  static constexpr std::uint32_t kStandby = 2;

  void Recreate(bool ketama) {
    fs_.reset();
    storage_.reset();
    network_.reset();
    sim_ = std::make_unique<sim::Simulation>();
    network_ = std::make_unique<net::FairShareNetwork>(
        *sim_, net::Das4Ipoib(kInitial + kStandby));
    storage_ = std::make_unique<kv::KvCluster>(
        *sim_, *network_, std::vector<net::NodeId>{0, 1, 2, 3});
    MemFsConfig config;
    config.use_ketama = ketama;
    fs_ = std::make_unique<MemFs>(*sim_, *network_, *storage_, config);
  }

  Status WriteFile(VfsContext ctx, const std::string& path,
                   const Bytes& data) {
    auto created = Await(*sim_, fs_->Create(ctx, path));
    if (!created.ok()) return created.status();
    Status s = Await(*sim_, fs_->Write(ctx, created.value(), data));
    if (!s.ok()) return s;
    return Await(*sim_, fs_->Close(ctx, created.value()));
  }

  Result<Bytes> ReadFile(VfsContext ctx, const std::string& path) {
    auto opened = Await(*sim_, fs_->Open(ctx, path));
    if (!opened.ok()) return opened.status();
    Bytes out;
    while (true) {
      auto chunk =
          Await(*sim_, fs_->Read(ctx, opened.value(), out.size(), MiB(1)));
      if (!chunk.ok()) return chunk.status();
      if (chunk->empty()) break;
      out.Append(*chunk);
    }
    Status closed = Await(*sim_, fs_->Close(ctx, opened.value()));
    if (!closed.ok()) return closed;
    return out;
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<net::FairShareNetwork> network_;
  std::unique_ptr<kv::KvCluster> storage_;
  std::unique_ptr<MemFs> fs_;
};

TEST_F(ElasticTest, AddServerOpensNewEpoch) {
  Recreate(/*ketama=*/true);
  EXPECT_EQ(fs_->current_epoch(), 0u);
  EXPECT_EQ(storage_->server_count(), 4u);
  const auto epoch = fs_->AddStorageServer(4);
  EXPECT_EQ(epoch, 1u);
  EXPECT_EQ(fs_->current_epoch(), 1u);
  EXPECT_EQ(storage_->server_count(), 5u);
  EXPECT_EQ(fs_->distributor().server_count(), 5u);
}

TEST_F(ElasticTest, OldFilesReadableAfterScaleOut) {
  Recreate(/*ketama=*/true);
  const Bytes old_data = Bytes::Synthetic(MiB(3), 17);
  ASSERT_TRUE(WriteFile({0, 0}, "/old", old_data).ok());

  (void)fs_->AddStorageServer(4);
  (void)fs_->AddStorageServer(5);

  // Old file still reads correctly (its stripes were never moved).
  auto back = ReadFile({2, 0}, "/old");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ContentEquals(old_data));
  // And the new server holds none of it.
  EXPECT_EQ(storage_->server(4).memory_used(), 0u);
  EXPECT_EQ(storage_->server(5).memory_used(), 0u);
}

TEST_F(ElasticTest, NewFilesUseNewServers) {
  Recreate(/*ketama=*/true);
  (void)fs_->AddStorageServer(4);
  // Enough stripes that the 5-server ring statistically must touch server 4.
  for (int f = 0; f < 8; ++f) {
    ASSERT_TRUE(WriteFile({static_cast<net::NodeId>(f % 4), 0},
                          "/new_" + std::to_string(f),
                          Bytes::Synthetic(MiB(4), f))
                    .ok());
  }
  EXPECT_GT(storage_->server(4).memory_used(), 0u);
  // And the new files read back fine from any node, including the new one.
  auto back = ReadFile({4, 0}, "/new_3");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ContentEquals(Bytes::Synthetic(MiB(4), 3)));
}

TEST_F(ElasticTest, MixedEpochFilesCoexist) {
  Recreate(/*ketama=*/true);
  ASSERT_TRUE(WriteFile({0, 0}, "/e0", Bytes::Synthetic(MiB(2), 1)).ok());
  (void)fs_->AddStorageServer(4);
  ASSERT_TRUE(WriteFile({1, 0}, "/e1", Bytes::Synthetic(MiB(2), 2)).ok());
  (void)fs_->AddStorageServer(5);
  ASSERT_TRUE(WriteFile({2, 0}, "/e2", Bytes::Synthetic(MiB(2), 3)).ok());

  for (int f = 0; f < 3; ++f) {
    const std::string path = "/e" + std::to_string(f);
    auto back = ReadFile({3, 0}, path);
    ASSERT_TRUE(back.ok()) << path;
    EXPECT_TRUE(back->ContentEquals(Bytes::Synthetic(MiB(2), f + 1))) << path;
    auto info = Await(*sim_, fs_->Stat({0, 0}, path));
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->size, MiB(2));
  }
}

TEST_F(ElasticTest, WorksWithModuloToo) {
  // Epoch pinning makes even modulo safe across scale-outs (no remapping of
  // existing files to worry about).
  Recreate(/*ketama=*/false);
  const Bytes data = Bytes::Synthetic(MiB(2), 9);
  ASSERT_TRUE(WriteFile({0, 0}, "/m0", data).ok());
  (void)fs_->AddStorageServer(4);
  ASSERT_TRUE(WriteFile({0, 0}, "/m1", data).ok());
  EXPECT_TRUE(ReadFile({1, 0}, "/m0")->ContentEquals(data));
  EXPECT_TRUE(ReadFile({1, 0}, "/m1")->ContentEquals(data));
}

TEST_F(ElasticTest, EpochSurvivesInMetadataRecord) {
  Recreate(/*ketama=*/true);
  (void)fs_->AddStorageServer(4);
  ASSERT_TRUE(WriteFile({0, 0}, "/tagged", Bytes::Synthetic(KiB(10), 1)).ok());
  // The record's home is epoch-0 placement; search the original servers and
  // check the stored record carries the write-time epoch.
  bool found = false;
  for (std::uint32_t srv = 0; srv < 4; ++srv) {
    auto direct = storage_->server(srv).Get("/tagged");
    if (direct.ok()) {
      auto decoded = meta::Decode(direct.value());
      ASSERT_TRUE(decoded.ok());
      EXPECT_EQ(decoded->file.epoch, 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ElasticTest, LeftServerFailsReadsPermanently) {
  // Satellite of the membership work: with epoch pinning (no migrator), a
  // server that drained away takes its un-migrated stripes with it. Reads
  // must trip the distinct non-retryable UNAVAILABLE_PERMANENT, not spin
  // retries against data that no longer exists.
  Recreate(/*ketama=*/true);
  ASSERT_TRUE(WriteFile({0, 0}, "/pin", Bytes::Synthetic(MiB(2), 5)).ok());
  const std::uint32_t holder =
      fs_->distributor().ServerFor(Striper::StripeKey("/pin", 0));
  storage_->SetServerLeft(holder);
  EXPECT_TRUE(storage_->IsServerLeft(holder));
  auto back = ReadFile({1, 0}, "/pin");
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), ErrorCode::kUnavailablePermanent);
  EXPECT_FALSE(IsRetryable(back.status().code()));
}

// ---------------------------------------------------------------------------
// KetamaRing membership deltas

std::vector<std::uint32_t> Iota(std::uint32_t n) {
  std::vector<std::uint32_t> members(n);
  for (std::uint32_t i = 0; i < n; ++i) members[i] = i;
  return members;
}

TEST(KetamaRingDeltaTest, FullSetMatchesKetamaDistributor) {
  const hash::KetamaRing ring(Iota(8), 160);
  const hash::KetamaDistributor dist(8, 160);
  for (int i = 0; i < 256; ++i) {
    const std::string key = "obj-" + std::to_string(i);
    EXPECT_EQ(ring.ServerFor(key), dist.ServerFor(key));
    const auto chain = ring.ReplicaChain(key, 2);
    ASSERT_EQ(chain.size(), 2u);
    EXPECT_EQ(chain[0], dist.ServerFor(key));
    EXPECT_EQ(chain[1], (ring.OwnerRank(key) + 1) % 8);
  }
}

TEST(KetamaRingDeltaTest, JoinMovesOnlyAMinimalShareOntoTheNewMember) {
  const hash::KetamaRing before(Iota(8));
  const hash::KetamaRing after(Iota(9));
  const int kKeys = 2000;
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "obj-" + std::to_string(i);
    const std::uint32_t was = before.ServerFor(key);
    const std::uint32_t now = after.ServerFor(key);
    if (was != now) {
      ++moved;
      // Minimal movement: a key only ever moves onto the joining member.
      EXPECT_EQ(now, 8u) << key;
    }
  }
  // Expected share is 1/9 ~ 11%; allow a generous band for hash variance.
  EXPECT_GT(moved, kKeys * 4 / 100);
  EXPECT_LT(moved, kKeys * 25 / 100);
}

TEST(KetamaRingDeltaTest, LeaveMovesOnlyTheDepartedMembersKeys) {
  const hash::KetamaRing before(Iota(8));
  std::vector<std::uint32_t> rest;
  for (std::uint32_t i = 0; i < 8; ++i) {
    if (i != 3) rest.push_back(i);
  }
  const hash::KetamaRing after(rest);
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "obj-" + std::to_string(i);
    const std::uint32_t was = before.ServerFor(key);
    const std::uint32_t now = after.ServerFor(key);
    if (was != 3) {
      EXPECT_EQ(now, was) << key;  // untouched placements stay put
    } else {
      EXPECT_NE(now, 3u) << key;
    }
  }
}

TEST(KetamaRingDeltaTest, DrainThenRejoinRestoresPlacement) {
  // A member that leaves and later rejoins (same identity) gets exactly its
  // old vnode positions back: placement is a pure function of the member set.
  const hash::KetamaRing original(Iota(6));
  std::vector<std::uint32_t> without;
  for (std::uint32_t i = 0; i < 6; ++i) {
    if (i != 2) without.push_back(i);
  }
  const hash::KetamaRing drained(without);
  const hash::KetamaRing rejoined(Iota(6));
  for (int i = 0; i < 500; ++i) {
    const std::string key = "obj-" + std::to_string(i);
    EXPECT_EQ(original.ServerFor(key), rejoined.ServerFor(key));
    EXPECT_NE(drained.ServerFor(key), 2u);
  }
}

// ---------------------------------------------------------------------------
// HandoffGate

sim::Task GateWriter(sim::Simulation& sim, kv::HandoffGate& gate,
                     std::string key, sim::SimTime hold,
                     sim::SimTime& entered) {
  co_await gate.EnterWriter(key);
  entered = sim.now();
  co_await sim.Delay(hold);
  gate.ExitWriter(key);
}

sim::Task GateLocker(sim::Simulation& sim, kv::HandoffGate& gate,
                     std::string key, sim::SimTime hold,
                     sim::SimTime& locked_at) {
  co_await gate.Lock(key);
  locked_at = sim.now();
  // lint: allow(await-held-lock) the test exists to hold the lock across time
  co_await sim.Delay(hold);
  gate.Unlock(key);
}

TEST(HandoffGateTest, LockerWaitsForWritersAndBlocksNewWriters) {
  using units::Millis;
  sim::Simulation sim;
  kv::HandoffGate gate(sim);
  sim::SimTime w1 = 1, w2 = 1, w3 = 1, locked_at = 1;
  // Two concurrent writers enter immediately; the locker must wait for both;
  // a writer arriving behind the queued locker waits out the whole handoff.
  GateWriter(sim, gate, "k", Millis(2), w1);
  GateWriter(sim, gate, "k", Millis(3), w2);
  GateLocker(sim, gate, "k", Millis(5), locked_at);
  GateWriter(sim, gate, "k", Millis(1), w3);
  sim.Run();
  EXPECT_EQ(w1, 0u);
  EXPECT_EQ(w2, 0u);
  EXPECT_EQ(locked_at, Millis(3));       // after the slower writer exits
  EXPECT_EQ(w3, Millis(3) + Millis(5));  // after the handoff unlocks
  EXPECT_FALSE(gate.locked("k"));
  EXPECT_EQ(gate.writers("k"), 0u);
}

TEST(HandoffGateTest, IndependentKeysDoNotInterfere) {
  using units::Millis;
  sim::Simulation sim;
  kv::HandoffGate gate(sim);
  sim::SimTime locked_a = 1, writer_b = 1;
  GateLocker(sim, gate, "a", Millis(10), locked_a);
  GateWriter(sim, gate, "b", Millis(1), writer_b);
  sim.Run();
  EXPECT_EQ(locked_a, 0u);
  EXPECT_EQ(writer_b, 0u);  // "b" is not gated by the handoff of "a"
}

TEST_F(ElasticTest, MetadataCodecEpochRoundTrip) {
  auto decoded = meta::Decode(meta::EncodeFile({12345, true, 7}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->file.size, 12345u);
  EXPECT_TRUE(decoded->file.sealed);
  EXPECT_EQ(decoded->file.epoch, 7u);
  // Legacy record without epoch still parses (defaults to epoch 0).
  decoded = meta::Decode(Bytes::Copy("F 42 1\n"));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->file.epoch, 0u);
}

// ---------------------------------------------------------------------------
// Membership lifecycle and routing

TEST(MembershipTest, LifecycleAndMonotoneEpochs) {
  sim::Simulation sim;
  net::FairShareNetwork network(sim, net::Das4Ipoib(6));
  kv::KvCluster storage(sim, network, {0, 1, 2, 3});
  kv::Membership membership(sim, storage);

  EXPECT_EQ(membership.epoch(), 0u);
  EXPECT_FALSE(membership.migrating());
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(membership.state(s), kv::NodeState::kActive);
  }

  const std::uint32_t joined = membership.BeginJoin(4);
  EXPECT_EQ(joined, 4u);
  EXPECT_EQ(membership.epoch(), 1u);
  EXPECT_TRUE(membership.migrating());
  EXPECT_EQ(membership.state(4), kv::NodeState::kJoining);
  EXPECT_EQ(membership.member_count(), 5u);
  EXPECT_EQ(membership.transition_server(), 4u);
  membership.CommitTransition();
  EXPECT_FALSE(membership.migrating());
  EXPECT_EQ(membership.state(4), kv::NodeState::kActive);

  membership.BeginDrain(1);
  EXPECT_EQ(membership.epoch(), 2u);
  EXPECT_EQ(membership.state(1), kv::NodeState::kDraining);
  EXPECT_EQ(membership.member_count(), 4u);  // ring already excludes it
  membership.CommitTransition();
  EXPECT_EQ(membership.state(1), kv::NodeState::kLeft);
  EXPECT_TRUE(storage.IsServerLeft(1));

  // The retired index never returns; a rejoin is a brand-new server.
  const std::uint32_t rejoined = membership.BeginJoin(5);
  EXPECT_EQ(rejoined, 5u);
  EXPECT_EQ(membership.epoch(), 3u);
  membership.CommitTransition();
  EXPECT_EQ(membership.member_count(), 5u);
}

TEST(MembershipTest, RoutingDuringPendingHandoff) {
  sim::Simulation sim;
  net::FairShareNetwork network(sim, net::Das4Ipoib(6));
  kv::KvCluster storage(sim, network, {0, 1, 2, 3});
  kv::MembershipConfig config;
  config.replication = 2;
  kv::Membership membership(sim, storage, config);
  membership.BeginJoin(4);

  std::string moving;
  std::string staying;
  for (int i = 0; i < 2000 && (moving.empty() || staying.empty()); ++i) {
    const std::string key = "route-" + std::to_string(i);
    if (membership.KeyMoves(key)) {
      if (moving.empty()) moving = key;
    } else if (staying.empty()) {
      staying = key;
    }
  }
  ASSERT_FALSE(moving.empty());
  ASSERT_FALSE(staying.empty());

  // A key that stays is never gated and routes straight through.
  EXPECT_FALSE(membership.ShouldGate(staying));
  const auto stay_route = membership.RouteWrite(staying);
  EXPECT_EQ(stay_route.primary, membership.ring().ReplicaChain(staying, 2));
  EXPECT_TRUE(stay_route.secondary.empty());
  EXPECT_EQ(membership.ReadChain(staying),
            membership.ring().ReplicaChain(staying, 2));

  // A moving key: old chain stays authoritative, new-chain extras get the
  // dual-commit, and reads cover the union (new ring first).
  EXPECT_TRUE(membership.ShouldGate(moving));
  const auto old_chain = membership.old_ring()->ReplicaChain(moving, 2);
  const auto new_chain = membership.ring().ReplicaChain(moving, 2);
  const auto route = membership.RouteWrite(moving);
  EXPECT_EQ(route.primary, old_chain);
  ASSERT_FALSE(route.secondary.empty());
  for (std::uint32_t server : route.secondary) {
    EXPECT_TRUE(std::find(new_chain.begin(), new_chain.end(), server) !=
                new_chain.end());
    EXPECT_TRUE(std::find(old_chain.begin(), old_chain.end(), server) ==
                old_chain.end());
  }
  const auto read_chain = membership.ReadChain(moving);
  ASSERT_GE(read_chain.size(), new_chain.size());
  for (std::size_t i = 0; i < new_chain.size(); ++i) {
    EXPECT_EQ(read_chain[i], new_chain[i]);  // new ring consulted first
  }
  for (std::uint32_t server : old_chain) {
    EXPECT_TRUE(std::find(read_chain.begin(), read_chain.end(), server) !=
                read_chain.end());
  }

  // Once the handoff commits, the key routes purely via the new ring.
  membership.MarkCommitted(moving);
  EXPECT_FALSE(membership.ShouldGate(moving));
  const auto committed_route = membership.RouteWrite(moving);
  EXPECT_EQ(committed_route.primary, new_chain);
  EXPECT_TRUE(committed_route.secondary.empty());
  EXPECT_EQ(membership.ReadChain(moving), new_chain);
}

// ---------------------------------------------------------------------------
// Migrator end-to-end on a live file system

class ElasticClusterTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kServers = 4;
  static constexpr std::uint32_t kFiles = 12;

  void Create(std::uint32_t replication) {
    sim_ = std::make_unique<sim::Simulation>();
    network_ = std::make_unique<net::FairShareNetwork>(
        *sim_, net::Das4Ipoib(kServers + 2));
    storage_ = std::make_unique<kv::KvCluster>(
        *sim_, *network_, std::vector<net::NodeId>{0, 1, 2, 3});
    MemFsConfig config;
    config.use_ketama = true;
    config.replication = replication;
    fs_ = std::make_unique<MemFs>(*sim_, *network_, *storage_, config);
    kv::MembershipConfig member_config;
    member_config.replication = replication;
    membership_ =
        std::make_unique<kv::Membership>(*sim_, *storage_, member_config);
    migrator_ = std::make_unique<kv::Migrator>(*sim_, *membership_);
    fs_->AttachMembership(membership_.get());
  }

  void WriteCorpus() {
    for (std::uint32_t f = 0; f < kFiles; ++f) {
      ASSERT_TRUE(WriteFile({f % kServers, 0}, "/data_" + std::to_string(f),
                            Bytes::Synthetic(MiB(1), 100 + f))
                      .ok())
          << f;
    }
  }

  void ExpectCorpusIntact() {
    for (std::uint32_t f = 0; f < kFiles; ++f) {
      auto back = ReadFile({(f + 1) % kServers, 0},
                           "/data_" + std::to_string(f));
      ASSERT_TRUE(back.ok()) << f << ": " << back.status().message();
      EXPECT_TRUE(back->ContentEquals(Bytes::Synthetic(MiB(1), 100 + f)))
          << f;
    }
  }

  Status WriteFile(VfsContext ctx, const std::string& path,
                   const Bytes& data) {
    auto created = Await(*sim_, fs_->Create(ctx, path));
    if (!created.ok()) return created.status();
    Status s = Await(*sim_, fs_->Write(ctx, created.value(), data));
    if (!s.ok()) return s;
    return Await(*sim_, fs_->Close(ctx, created.value()));
  }

  Result<Bytes> ReadFile(VfsContext ctx, const std::string& path) {
    auto opened = Await(*sim_, fs_->Open(ctx, path));
    if (!opened.ok()) return opened.status();
    Bytes out;
    while (true) {
      auto chunk =
          Await(*sim_, fs_->Read(ctx, opened.value(), out.size(), MiB(1)));
      if (!chunk.ok()) return chunk.status();
      if (chunk->empty()) break;
      out.Append(*chunk);
    }
    Status closed = Await(*sim_, fs_->Close(ctx, opened.value()));
    if (!closed.ok()) return closed;
    return out;
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<net::FairShareNetwork> network_;
  std::unique_ptr<kv::KvCluster> storage_;
  std::unique_ptr<MemFs> fs_;
  std::unique_ptr<kv::Membership> membership_;
  std::unique_ptr<kv::Migrator> migrator_;
};

TEST_F(ElasticClusterTest, JoinRebalancesOntoTheNewServer) {
  Create(/*replication=*/1);
  WriteCorpus();
  ASSERT_EQ(storage_->server_count(), 4u);  // standby not yet a kv server

  ASSERT_EQ(membership_->BeginJoin(4), 4u);
  ASSERT_EQ(storage_->server(4).memory_used(), 0u);
  const Status status = Await(*sim_, migrator_->Rebalance());
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_FALSE(membership_->migrating());
  EXPECT_EQ(membership_->state(4), kv::NodeState::kActive);

  // The new server now owns its ~1/5 share, and with replication 1 every
  // moved byte landed exactly there.
  EXPECT_GT(storage_->server(4).memory_used(), 0u);
  const auto& progress = migrator_->progress();
  EXPECT_GT(progress.keys_moved, 0u);
  EXPECT_EQ(progress.keys_moved, progress.keys_total);
  EXPECT_EQ(progress.bytes_moved, storage_->server(4).memory_used());
  EXPECT_FALSE(progress.active);

  ExpectCorpusIntact();
  // And the grown cluster keeps serving new writes, including via new node.
  ASSERT_TRUE(
      WriteFile({4, 0}, "/after_join", Bytes::Synthetic(MiB(1), 77)).ok());
  EXPECT_TRUE(ReadFile({0, 0}, "/after_join")
                  ->ContentEquals(Bytes::Synthetic(MiB(1), 77)));
}

TEST_F(ElasticClusterTest, DrainReachesLeftAndMovesItsShare) {
  Create(/*replication=*/1);
  WriteCorpus();
  const std::uint64_t owned = storage_->server(1).memory_used();
  ASSERT_GT(owned, 0u);

  membership_->BeginDrain(1);
  const Status status = Await(*sim_, migrator_->Rebalance());
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_FALSE(membership_->migrating());
  EXPECT_EQ(membership_->state(1), kv::NodeState::kLeft);
  EXPECT_TRUE(storage_->IsServerLeft(1));
  // Exactly the drained server's share crossed the fabric, and its slot was
  // reclaimed at LEFT.
  EXPECT_EQ(migrator_->progress().bytes_moved, owned);
  EXPECT_EQ(storage_->server(1).memory_used(), 0u);

  ExpectCorpusIntact();
  ASSERT_TRUE(
      WriteFile({2, 0}, "/after_drain", Bytes::Synthetic(MiB(1), 88)).ok());
  EXPECT_TRUE(ReadFile({3, 0}, "/after_drain")
                  ->ContentEquals(Bytes::Synthetic(MiB(1), 88)));
}

TEST_F(ElasticClusterTest, ReplicatedDrainKeepsEveryFileReadable) {
  Create(/*replication=*/2);
  WriteCorpus();
  membership_->BeginDrain(2);
  const Status status = Await(*sim_, migrator_->Rebalance());
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(membership_->state(2), kv::NodeState::kLeft);
  ExpectCorpusIntact();
}

TEST_F(ElasticClusterTest, MigratorResumesIdempotentlyAfterSourceOutage) {
  Create(/*replication=*/1);
  WriteCorpus();
  // Take a source down; a bounded run cannot converge and must leave the
  // transition open instead of committing a half-moved ring.
  storage_->SetServerDown(0, /*down=*/true, /*wipe=*/false);
  membership_->BeginJoin(4);
  kv::MigratorConfig bounded;
  bounded.max_sweeps = 2;
  kv::Migrator first_attempt(*sim_, *membership_, bounded);
  const Status gave_up = Await(*sim_, first_attempt.Rebalance());
  ASSERT_FALSE(gave_up.ok());
  EXPECT_TRUE(membership_->migrating());
  EXPECT_EQ(membership_->state(4), kv::NodeState::kJoining);

  // The source restarts (data intact); a fresh run resumes from whatever the
  // first attempt managed and converges without double-moving anything.
  // (Let the source's circuit breaker lapse back to half-open first, as any
  // real re-run happening later in wall-clock time would.)
  storage_->SetServerDown(0, /*down=*/false, /*wipe=*/false);
  sim_->Schedule(units::Millis(6), [] {});
  sim_->Run();
  kv::Migrator second_attempt(*sim_, *membership_, bounded);
  const Status resumed = Await(*sim_, second_attempt.Rebalance());
  ASSERT_TRUE(resumed.ok()) << resumed.message();
  EXPECT_FALSE(membership_->migrating());
  EXPECT_EQ(membership_->state(4), kv::NodeState::kActive);
  const std::uint64_t landed = storage_->server(4).memory_used();
  EXPECT_EQ(first_attempt.progress().bytes_moved +
                second_attempt.progress().bytes_moved,
            landed);
  ExpectCorpusIntact();
}

}  // namespace
}  // namespace memfs::fs
