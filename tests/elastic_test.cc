// Tests for the elastic scale-out extension (§5's future work): ring
// epochs, AddStorageServer, placement of new vs old files, and interaction
// with ketama's minimal remapping.
#include <gtest/gtest.h>

#include "common/units.h"
#include "kvstore/kv_cluster.h"
#include "memfs/memfs.h"
#include "memfs/metadata.h"
#include "net/fluid_network.h"
#include "test_util.h"

namespace memfs::fs {
namespace {

using memfs::testing::Await;
using units::KiB;
using units::MiB;

class ElasticTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kInitial = 4;
  static constexpr std::uint32_t kStandby = 2;

  void Recreate(bool ketama) {
    fs_.reset();
    storage_.reset();
    network_.reset();
    sim_ = std::make_unique<sim::Simulation>();
    network_ = std::make_unique<net::FairShareNetwork>(
        *sim_, net::Das4Ipoib(kInitial + kStandby));
    storage_ = std::make_unique<kv::KvCluster>(
        *sim_, *network_, std::vector<net::NodeId>{0, 1, 2, 3});
    MemFsConfig config;
    config.use_ketama = ketama;
    fs_ = std::make_unique<MemFs>(*sim_, *network_, *storage_, config);
  }

  Status WriteFile(VfsContext ctx, const std::string& path,
                   const Bytes& data) {
    auto created = Await(*sim_, fs_->Create(ctx, path));
    if (!created.ok()) return created.status();
    Status s = Await(*sim_, fs_->Write(ctx, created.value(), data));
    if (!s.ok()) return s;
    return Await(*sim_, fs_->Close(ctx, created.value()));
  }

  Result<Bytes> ReadFile(VfsContext ctx, const std::string& path) {
    auto opened = Await(*sim_, fs_->Open(ctx, path));
    if (!opened.ok()) return opened.status();
    Bytes out;
    while (true) {
      auto chunk =
          Await(*sim_, fs_->Read(ctx, opened.value(), out.size(), MiB(1)));
      if (!chunk.ok()) return chunk.status();
      if (chunk->empty()) break;
      out.Append(*chunk);
    }
    Status closed = Await(*sim_, fs_->Close(ctx, opened.value()));
    if (!closed.ok()) return closed;
    return out;
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<net::FairShareNetwork> network_;
  std::unique_ptr<kv::KvCluster> storage_;
  std::unique_ptr<MemFs> fs_;
};

TEST_F(ElasticTest, AddServerOpensNewEpoch) {
  Recreate(/*ketama=*/true);
  EXPECT_EQ(fs_->current_epoch(), 0u);
  EXPECT_EQ(storage_->server_count(), 4u);
  const auto epoch = fs_->AddStorageServer(4);
  EXPECT_EQ(epoch, 1u);
  EXPECT_EQ(fs_->current_epoch(), 1u);
  EXPECT_EQ(storage_->server_count(), 5u);
  EXPECT_EQ(fs_->distributor().server_count(), 5u);
}

TEST_F(ElasticTest, OldFilesReadableAfterScaleOut) {
  Recreate(/*ketama=*/true);
  const Bytes old_data = Bytes::Synthetic(MiB(3), 17);
  ASSERT_TRUE(WriteFile({0, 0}, "/old", old_data).ok());

  (void)fs_->AddStorageServer(4);
  (void)fs_->AddStorageServer(5);

  // Old file still reads correctly (its stripes were never moved).
  auto back = ReadFile({2, 0}, "/old");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ContentEquals(old_data));
  // And the new server holds none of it.
  EXPECT_EQ(storage_->server(4).memory_used(), 0u);
  EXPECT_EQ(storage_->server(5).memory_used(), 0u);
}

TEST_F(ElasticTest, NewFilesUseNewServers) {
  Recreate(/*ketama=*/true);
  (void)fs_->AddStorageServer(4);
  // Enough stripes that the 5-server ring statistically must touch server 4.
  for (int f = 0; f < 8; ++f) {
    ASSERT_TRUE(WriteFile({static_cast<net::NodeId>(f % 4), 0},
                          "/new_" + std::to_string(f),
                          Bytes::Synthetic(MiB(4), f))
                    .ok());
  }
  EXPECT_GT(storage_->server(4).memory_used(), 0u);
  // And the new files read back fine from any node, including the new one.
  auto back = ReadFile({4, 0}, "/new_3");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ContentEquals(Bytes::Synthetic(MiB(4), 3)));
}

TEST_F(ElasticTest, MixedEpochFilesCoexist) {
  Recreate(/*ketama=*/true);
  ASSERT_TRUE(WriteFile({0, 0}, "/e0", Bytes::Synthetic(MiB(2), 1)).ok());
  (void)fs_->AddStorageServer(4);
  ASSERT_TRUE(WriteFile({1, 0}, "/e1", Bytes::Synthetic(MiB(2), 2)).ok());
  (void)fs_->AddStorageServer(5);
  ASSERT_TRUE(WriteFile({2, 0}, "/e2", Bytes::Synthetic(MiB(2), 3)).ok());

  for (int f = 0; f < 3; ++f) {
    const std::string path = "/e" + std::to_string(f);
    auto back = ReadFile({3, 0}, path);
    ASSERT_TRUE(back.ok()) << path;
    EXPECT_TRUE(back->ContentEquals(Bytes::Synthetic(MiB(2), f + 1))) << path;
    auto info = Await(*sim_, fs_->Stat({0, 0}, path));
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->size, MiB(2));
  }
}

TEST_F(ElasticTest, WorksWithModuloToo) {
  // Epoch pinning makes even modulo safe across scale-outs (no remapping of
  // existing files to worry about).
  Recreate(/*ketama=*/false);
  const Bytes data = Bytes::Synthetic(MiB(2), 9);
  ASSERT_TRUE(WriteFile({0, 0}, "/m0", data).ok());
  (void)fs_->AddStorageServer(4);
  ASSERT_TRUE(WriteFile({0, 0}, "/m1", data).ok());
  EXPECT_TRUE(ReadFile({1, 0}, "/m0")->ContentEquals(data));
  EXPECT_TRUE(ReadFile({1, 0}, "/m1")->ContentEquals(data));
}

TEST_F(ElasticTest, EpochSurvivesInMetadataRecord) {
  Recreate(/*ketama=*/true);
  (void)fs_->AddStorageServer(4);
  ASSERT_TRUE(WriteFile({0, 0}, "/tagged", Bytes::Synthetic(KiB(10), 1)).ok());
  // The record's home is epoch-0 placement; search the original servers and
  // check the stored record carries the write-time epoch.
  bool found = false;
  for (std::uint32_t srv = 0; srv < 4; ++srv) {
    auto direct = storage_->server(srv).Get("/tagged");
    if (direct.ok()) {
      auto decoded = meta::Decode(direct.value());
      ASSERT_TRUE(decoded.ok());
      EXPECT_EQ(decoded->file.epoch, 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ElasticTest, MetadataCodecEpochRoundTrip) {
  auto decoded = meta::Decode(meta::EncodeFile({12345, true, 7}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->file.size, 12345u);
  EXPECT_TRUE(decoded->file.sealed);
  EXPECT_EQ(decoded->file.epoch, 7u);
  // Legacy record without epoch still parses (defaults to epoch 0).
  decoded = meta::Decode(Bytes::Copy("F 42 1\n"));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->file.epoch, 0u);
}

}  // namespace
}  // namespace memfs::fs
