// Tests for the stage-in/stage-out utility: cross-file-system copies
// between a disk-backed "permanent" deployment and the in-memory runtime FS
// sharing one simulated cluster.
#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/units.h"
#include "kvstore/kv_cluster.h"
#include "memfs/memfs.h"
#include "mtc/staging.h"
#include "mtc/workflow.h"
#include "net/fluid_network.h"
#include "test_util.h"

namespace memfs::mtc {
namespace {

using memfs::testing::Await;
using units::KiB;
using units::MiB;

// Two file systems on one simulated cluster: a "permanent" store and the
// runtime MemFS (both use the MemFS client here; what matters for staging is
// that they are distinct namespaces on distinct server sets).
class StagingTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kNodes = 4;

  StagingTest() : network_(sim_, net::Das4Ipoib(kNodes)) {
    permanent_storage_ = std::make_unique<kv::KvCluster>(
        sim_, network_, std::vector<net::NodeId>{0, 1});
    runtime_storage_ = std::make_unique<kv::KvCluster>(
        sim_, network_, std::vector<net::NodeId>{0, 1, 2, 3});
    permanent_ = std::make_unique<fs::MemFs>(sim_, network_,
                                             *permanent_storage_,
                                             fs::MemFsConfig{});
    runtime_ = std::make_unique<fs::MemFs>(sim_, network_, *runtime_storage_,
                                           fs::MemFsConfig{});
  }

  Status WriteFile(fs::Vfs& vfs, const std::string& path, const Bytes& data) {
    auto created = Await(sim_, vfs.Create({0, 0}, path));
    if (!created.ok()) return created.status();
    Status s = Await(sim_, vfs.Write({0, 0}, created.value(), data));
    if (!s.ok()) return s;
    return Await(sim_, vfs.Close({0, 0}, created.value()));
  }

  Result<Bytes> ReadFile(fs::Vfs& vfs, const std::string& path) {
    auto opened = Await(sim_, vfs.Open({1, 0}, path));
    if (!opened.ok()) return opened.status();
    Bytes out;
    while (true) {
      auto chunk =
          Await(sim_, vfs.Read({1, 0}, opened.value(), out.size(), MiB(1)));
      if (!chunk.ok()) return chunk.status();
      if (chunk->empty()) break;
      out.Append(*chunk);
    }
    (void)Await(sim_, vfs.Close({1, 0}, opened.value()));
    return out;
  }

  sim::Simulation sim_;
  net::FairShareNetwork network_;
  std::unique_ptr<kv::KvCluster> permanent_storage_;
  std::unique_ptr<kv::KvCluster> runtime_storage_;
  std::unique_ptr<fs::MemFs> permanent_;
  std::unique_ptr<fs::MemFs> runtime_;
};

TEST_F(StagingTest, CopySingleFile) {
  const Bytes data = Bytes::Pattern(KiB(700), 3);
  ASSERT_TRUE(WriteFile(*permanent_, "/input", data).ok());

  Stager stager(sim_, {.streams = 4, .nodes = kNodes});
  const auto report = stager.CopyFiles(*permanent_, *runtime_, {"/input"});
  ASSERT_TRUE(report.status.ok()) << report.status;
  EXPECT_EQ(report.files, 1u);
  EXPECT_EQ(report.bytes, KiB(700));
  EXPECT_GT(report.elapsed, 0u);

  auto back = ReadFile(*runtime_, "/input");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ContentEquals(data));
}

TEST_F(StagingTest, MetricsSeparateStageInFromStageOut) {
  ASSERT_TRUE(WriteFile(*permanent_, "/in_a", Bytes::Pattern(KiB(64), 1)).ok());
  ASSERT_TRUE(WriteFile(*permanent_, "/in_b", Bytes::Pattern(KiB(32), 2)).ok());
  ASSERT_TRUE(WriteFile(*runtime_, "/result", Bytes::Pattern(KiB(48), 3)).ok());

  MetricsRegistry metrics;
  StagingConfig stage_in;
  stage_in.streams = 2;
  stage_in.nodes = kNodes;
  stage_in.metrics = &metrics;
  stage_in.metric_prefix = "stage_in";
  Stager in(sim_, stage_in);
  const auto in_report =
      in.CopyFiles(*permanent_, *runtime_, {"/in_a", "/in_b"});
  ASSERT_TRUE(in_report.status.ok()) << in_report.status;

  StagingConfig stage_out = stage_in;
  stage_out.metrics = &metrics;
  stage_out.metric_prefix = "stage_out";
  Stager out(sim_, stage_out);
  const auto out_report = out.CopyFiles(*runtime_, *permanent_, {"/result"});
  ASSERT_TRUE(out_report.status.ok()) << out_report.status;

  // Counters agree with the reports, per direction.
  EXPECT_EQ(metrics.CounterValue("stage_in.files"), 2u);
  EXPECT_EQ(metrics.CounterValue("stage_in.bytes"), KiB(64) + KiB(32));
  EXPECT_EQ(metrics.CounterValue("stage_in.bytes"), in_report.bytes);
  EXPECT_EQ(metrics.CounterValue("stage_out.files"), 1u);
  EXPECT_EQ(metrics.CounterValue("stage_out.bytes"), KiB(48));
  EXPECT_EQ(metrics.CounterValue("stage_out.bytes"), out_report.bytes);
}

TEST_F(StagingTest, FailedCopiesLeaveCountersUntouched) {
  MetricsRegistry metrics;
  StagingConfig config;
  config.streams = 2;
  config.nodes = kNodes;
  config.metrics = &metrics;
  Stager stager(sim_, config);
  const auto report =
      stager.CopyFiles(*permanent_, *runtime_, {"/never_written"});
  EXPECT_FALSE(report.status.ok());
  EXPECT_EQ(metrics.CounterValue("staging.files"), 0u);
  EXPECT_EQ(metrics.CounterValue("staging.bytes"), 0u);
}

TEST_F(StagingTest, CopyManyFilesBoundedStreams) {
  std::vector<std::string> paths;
  for (int f = 0; f < 20; ++f) {
    const std::string path = "/in_" + std::to_string(f);
    ASSERT_TRUE(WriteFile(*permanent_, path, Bytes::Synthetic(KiB(300), f)).ok());
    paths.push_back(path);
  }
  Stager stager(sim_, {.streams = 3, .nodes = kNodes});
  const auto report = stager.CopyFiles(*permanent_, *runtime_, paths);
  ASSERT_TRUE(report.status.ok());
  EXPECT_EQ(report.files, 20u);
  EXPECT_EQ(report.bytes, KiB(300) * 20);
  for (int f = 0; f < 20; ++f) {
    auto back = ReadFile(*runtime_, "/in_" + std::to_string(f));
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(back->ContentEquals(Bytes::Synthetic(KiB(300), f)));
  }
}

TEST_F(StagingTest, CopyTreeRecreatesDirectories) {
  ASSERT_TRUE(Await(sim_, permanent_->Mkdir({0, 0}, "/data")).ok());
  ASSERT_TRUE(Await(sim_, permanent_->Mkdir({0, 0}, "/data/sub")).ok());
  ASSERT_TRUE(WriteFile(*permanent_, "/data/a", Bytes::Copy("top")).ok());
  ASSERT_TRUE(WriteFile(*permanent_, "/data/sub/b", Bytes::Copy("deep")).ok());

  Stager stager(sim_, {.streams = 2, .nodes = kNodes});
  const auto report = stager.CopyTree(*permanent_, *runtime_, "/data");
  ASSERT_TRUE(report.status.ok()) << report.status;
  EXPECT_EQ(report.files, 2u);

  EXPECT_EQ(ReadFile(*runtime_, "/data/a")->view(), "top");
  EXPECT_EQ(ReadFile(*runtime_, "/data/sub/b")->view(), "deep");
  auto listing = Await(sim_, runtime_->ReadDir({0, 0}, "/data"));
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 2u);
}

TEST_F(StagingTest, MissingSourceReported) {
  Stager stager(sim_, {});
  const auto report = stager.CopyFiles(*permanent_, *runtime_, {"/nope"});
  EXPECT_FALSE(report.status.ok());
  EXPECT_EQ(report.files, 0u);
}

TEST_F(StagingTest, StageOutAfterStageIn) {
  // Round trip: permanent -> runtime -> permanent (under a new name space).
  ASSERT_TRUE(Await(sim_, permanent_->Mkdir({0, 0}, "/in")).ok());
  ASSERT_TRUE(Await(sim_, permanent_->Mkdir({0, 0}, "/out")).ok());
  ASSERT_TRUE(Await(sim_, runtime_->Mkdir({0, 0}, "/in")).ok());
  const Bytes data = Bytes::Synthetic(MiB(2), 8);
  ASSERT_TRUE(WriteFile(*permanent_, "/in/result", data).ok());

  Stager stager(sim_, {.streams = 4, .nodes = kNodes});
  ASSERT_TRUE(
      stager.CopyFiles(*permanent_, *runtime_, {"/in/result"}).status.ok());

  // "Workflow" renames happen in the runtime FS; stage the tree back out.
  const auto out = stager.CopyTree(*runtime_, *permanent_, "/in");
  // /in already exists on the destination -> files inside must still copy...
  // except /in/result already exists there too (write-once): expect EXISTS.
  EXPECT_FALSE(out.status.ok());
  EXPECT_EQ(out.status.code(), ErrorCode::kExists);
}

}  // namespace
}  // namespace memfs::mtc
