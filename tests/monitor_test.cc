// Unit tests for the continuous monitor: window slicing, registry scraping,
// probes, ring retention, balance math, and the SLO rule language. The
// cluster-scale neutrality claim (monitoring on == off, byte-identical
// digests) is pinned by the monitor_determinism ctest; here a small sim
// checks the same property at unit scale.
#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "monitor/monitor.h"
#include "monitor/slo.h"
#include "monitor/symmetry.h"
#include "sim/simulation.h"

namespace memfs::monitor {
namespace {

// --- Window slicing ---

TEST(MonitorTest, ClosesOneWindowPerBoundaryCrossed) {
  sim::Simulation sim;
  MonitorConfig config;
  config.interval = 10;
  Monitor mon(sim, config);
  int fired = 0;
  sim.Schedule(35, [&] { ++fired; });
  sim.Run();
  // The jump 0 -> 35 crosses boundaries 10, 20, 30.
  ASSERT_EQ(mon.windows().size(), 3u);
  EXPECT_EQ(mon.windows()[0].start, 0u);
  EXPECT_EQ(mon.windows()[0].end, 10u);
  EXPECT_EQ(mon.windows()[2].start, 20u);
  EXPECT_EQ(mon.windows()[2].end, 30u);
  EXPECT_EQ(fired, 1);
}

TEST(MonitorTest, FinishClosesTrailingPartialWindow) {
  sim::Simulation sim;
  MonitorConfig config;
  config.interval = 10;
  Monitor mon(sim, config);
  sim.Schedule(35, [] {});
  sim.Run();
  mon.Finish();
  ASSERT_EQ(mon.windows().size(), 4u);
  EXPECT_EQ(mon.windows()[3].start, 30u);
  EXPECT_EQ(mon.windows()[3].end, 35u);  // partial, ends at sim.now()
  mon.Finish();                          // idempotent until time advances
  EXPECT_EQ(mon.windows().size(), 4u);
}

TEST(MonitorTest, RetentionRingDropsOldestAndCounts) {
  sim::Simulation sim;
  MonitorConfig config;
  config.interval = 10;
  config.retention = 3;
  Monitor mon(sim, config);
  sim.Schedule(100, [] {});
  sim.Run();
  ASSERT_EQ(mon.windows().size(), 3u);
  EXPECT_EQ(mon.windows_closed(), 10u);
  EXPECT_EQ(mon.dropped_windows(), 7u);
  EXPECT_EQ(mon.windows().front().start, 70u);  // oldest surviving window
}

// --- Scraping ---

TEST(MonitorTest, GaugeSampledAsLevelAtBoundary) {
  sim::Simulation sim;
  MetricsRegistry registry;
  MonitorConfig config;
  config.interval = 10;
  Monitor mon(sim, config);
  mon.WatchRegistry(&registry);
  std::int64_t& depth = registry.Gauge("queue");
  sim.Schedule(5, [&] { depth = 7; });
  sim.Schedule(15, [&] { depth = 2; });
  sim.Schedule(25, [&] {});
  sim.Run();
  ASSERT_EQ(mon.windows().size(), 2u);
  const std::size_t id = mon.SeriesId("queue");
  ASSERT_NE(id, kNoSeries);
  EXPECT_EQ(mon.series()[id].kind, SeriesKind::kGauge);
  // Window [0,10) closes before the t=15 event: level is 7; [10,20) sees 2.
  EXPECT_DOUBLE_EQ(Monitor::Value(mon.windows()[0], id), 7.0);
  EXPECT_DOUBLE_EQ(Monitor::Value(mon.windows()[1], id), 2.0);
}

TEST(MonitorTest, CounterRecordedAsPerSecondRate) {
  sim::Simulation sim;
  MetricsRegistry registry;
  MonitorConfig config;
  config.interval = units::Millis(1);
  Monitor mon(sim, config);
  mon.WatchRegistry(&registry);
  std::uint64_t& retries = registry.Counter("retries");
  sim.Schedule(units::Micros(100), [&] { retries += 3; });
  sim.Schedule(units::Micros(1500), [&] { retries += 1; });
  sim.Schedule(units::Millis(2), [&] {});
  sim.Run();
  ASSERT_EQ(mon.windows().size(), 2u);
  const std::size_t id = mon.SeriesId("retries.rate");
  ASSERT_NE(id, kNoSeries);
  EXPECT_EQ(mon.series()[id].kind, SeriesKind::kRate);
  // 3 events in the first 1 ms window -> 3000/s; 1 in the second.
  EXPECT_DOUBLE_EQ(Monitor::Value(mon.windows()[0], id), 3000.0);
  EXPECT_DOUBLE_EQ(Monitor::Value(mon.windows()[1], id), 1000.0);
}

TEST(MonitorTest, HistogramCountBecomesOpRate) {
  sim::Simulation sim;
  MetricsRegistry registry;
  MonitorConfig config;
  config.interval = units::Millis(1);
  Monitor mon(sim, config);
  mon.WatchRegistry(&registry);
  sim.Schedule(units::Micros(10), [&] {
    registry.Histogram("kv.set").Record(500);
    registry.Histogram("kv.set").Record(900);
  });
  sim.Schedule(units::Millis(1), [&] {});
  sim.Run();
  const std::size_t id = mon.SeriesId("kv.set.rate");
  ASSERT_NE(id, kNoSeries);
  ASSERT_EQ(mon.windows().size(), 1u);
  EXPECT_DOUBLE_EQ(Monitor::Value(mon.windows()[0], id), 2000.0);
}

TEST(MonitorTest, ProbesGaugeAndScaledRate) {
  sim::Simulation sim;
  MonitorConfig config;
  config.interval = units::Millis(1);
  Monitor mon(sim, config);
  double level = 4.0;
  double total = 0.0;
  mon.AddGaugeProbe("level", [&] { return level; });
  // scale 0.001 turns "units per second" into "kilounits per second".
  mon.AddRateProbe("flow", [&] { return total; }, 0.001);
  sim.Schedule(units::Micros(100), [&] { total = 500.0; });
  sim.Schedule(units::Millis(1), [&] {
    level = 9.0;
    total = 800.0;
  });
  sim.Schedule(units::Millis(2), [&] {});
  sim.Run();
  ASSERT_EQ(mon.windows().size(), 2u);
  const std::size_t level_id = mon.SeriesId("level");
  const std::size_t flow_id = mon.SeriesId("flow");
  EXPECT_DOUBLE_EQ(Monitor::Value(mon.windows()[0], level_id), 4.0);
  // Second boundary samples *after* the t=1ms event ran: level is 9.
  EXPECT_DOUBLE_EQ(Monitor::Value(mon.windows()[1], level_id), 9.0);
  // 500 units in 1 ms -> 500000/s, scaled by 0.001 -> 500.
  EXPECT_DOUBLE_EQ(Monitor::Value(mon.windows()[0], flow_id), 500.0);
  EXPECT_DOUBLE_EQ(Monitor::Value(mon.windows()[1], flow_id), 300.0);
}

TEST(MonitorTest, LateSeriesReadNaNInEarlierWindows) {
  sim::Simulation sim;
  MetricsRegistry registry;
  MonitorConfig config;
  config.interval = 10;
  Monitor mon(sim, config);
  mon.WatchRegistry(&registry);
  sim.Schedule(15, [&] { registry.Gauge("late") = 5; });
  sim.Schedule(25, [&] {});
  sim.Run();
  ASSERT_EQ(mon.windows().size(), 2u);
  const std::size_t id = mon.SeriesId("late");
  ASSERT_NE(id, kNoSeries);
  EXPECT_TRUE(std::isnan(Monitor::Value(mon.windows()[0], id)));
  EXPECT_DOUBLE_EQ(Monitor::Value(mon.windows()[1], id), 5.0);
}

TEST(MonitorTest, InstancesOfOrdersByInstanceNumber) {
  sim::Simulation sim;
  MetricsRegistry registry;
  MonitorConfig config;
  config.interval = 10;
  Monitor mon(sim, config);
  mon.WatchRegistry(&registry);
  sim.Schedule(1, [&] {
    // Registered out of order; map iteration would give 0,10,2 as strings.
    registry.Gauge(InstanceGaugeName("kv.mem", 10)) = 1;
    registry.Gauge(InstanceGaugeName("kv.mem", 0)) = 1;
    registry.Gauge(InstanceGaugeName("kv.mem", 2)) = 1;
    registry.Gauge("kv.mem_total") = 3;  // different base, not an instance
  });
  sim.Schedule(10, [&] {});
  sim.Run();
  const std::vector<std::size_t> ids = mon.InstancesOf("kv.mem");
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(mon.series()[ids[0]].instance, 0u);
  EXPECT_EQ(mon.series()[ids[1]].instance, 2u);
  EXPECT_EQ(mon.series()[ids[2]].instance, 10u);
}

TEST(MonitorTest, ObserverNeutralSameDigestWithAndWithoutMonitor) {
  auto run = [](bool monitored) {
    sim::Simulation sim;
    MetricsRegistry registry;
    std::unique_ptr<Monitor> mon;
    if (monitored) {
      MonitorConfig config;
      config.interval = 7;
      mon = std::make_unique<Monitor>(sim, config);
      mon->WatchRegistry(&registry);
    }
    for (int i = 1; i <= 20; ++i) {
      sim.Schedule(static_cast<sim::SimTime>(i * 13),
                   [&registry, i] { registry.Gauge("g") = i; });
    }
    sim.Run();
    return sim.EventDigest();
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(MonitorTest, CsvAndJsonExportsCoverEveryWindow) {
  sim::Simulation sim;
  MetricsRegistry registry;
  MonitorConfig config;
  config.interval = 10;
  Monitor mon(sim, config);
  mon.WatchRegistry(&registry);
  sim.Schedule(5, [&] { registry.Gauge("g") = 3; });
  sim.Schedule(15, [&] { registry.Gauge("h") = 4; });  // second series late
  sim.Schedule(25, [&] {});
  sim.Run();
  std::ostringstream csv;
  mon.WriteCsv(csv);
  const std::string text = csv.str();
  EXPECT_NE(text.find("start_ns,end_ns,g,h"), std::string::npos);
  EXPECT_NE(text.find("0,10,3,"), std::string::npos);  // h absent -> empty
  EXPECT_NE(text.find("10,20,3,4"), std::string::npos);
  std::ostringstream json;
  mon.WriteJson(json);
  EXPECT_NE(json.str().find("\"windows\""), std::string::npos);
  EXPECT_NE(json.str().find("null"), std::string::npos);  // late series
}

// --- Balance math ---

Window MakeWindow(std::vector<double> values) {
  Window w;
  w.start = 0;
  w.end = 10;
  w.values = std::move(values);
  return w;
}

TEST(SymmetryTest, BalanceMatchesHandComputedStats) {
  // Instances 2, 4, 6: mean 4, max skew 6/4, MAD (2+0+2)/3 / 4, sample
  // variance (4+0+4)/2 = 4 (RunningStats semantics), chi2 (4+0+4)/4.
  const Window w = MakeWindow({2.0, 4.0, 6.0});
  const BalanceStats b = SymmetryAuditor::Balance(w, 0, {0, 1, 2});
  EXPECT_EQ(b.instances, 3u);
  EXPECT_DOUBLE_EQ(b.mean, 4.0);
  EXPECT_DOUBLE_EQ(b.min, 2.0);
  EXPECT_DOUBLE_EQ(b.max, 6.0);
  EXPECT_DOUBLE_EQ(b.max_skew, 1.5);
  EXPECT_DOUBLE_EQ(b.mean_skew, (2.0 + 0.0 + 2.0) / 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(b.cv, 0.5);  // sample stddev 2 over mean 4
  EXPECT_DOUBLE_EQ(b.chi_square, 2.0);
}

TEST(SymmetryTest, ZeroMeanWindowIsPerfectlyBalanced) {
  const Window w = MakeWindow({0.0, 0.0, 0.0});
  const BalanceStats b = SymmetryAuditor::Balance(w, 0, {0, 1, 2});
  EXPECT_DOUBLE_EQ(b.max_skew, 1.0);
  EXPECT_DOUBLE_EQ(b.cv, 0.0);
  EXPECT_DOUBLE_EQ(b.chi_square, 0.0);
}

TEST(SymmetryTest, AuditTracksWorstWindowAcrossTimeline) {
  sim::Simulation sim;
  MetricsRegistry registry;
  MonitorConfig config;
  config.interval = 10;
  Monitor mon(sim, config);
  mon.WatchRegistry(&registry);
  std::int64_t& a = registry.Gauge(InstanceGaugeName("mem", 0));
  std::int64_t& b = registry.Gauge(InstanceGaugeName("mem", 1));
  sim.Schedule(1, [&] {
    a = 10;
    b = 10;
  });                                 // balanced
  sim.Schedule(11, [&] { b = 30; });  // skewed: mean 20, max 30
  sim.Schedule(21, [&] { a = 30; });  // balanced again
  sim.Schedule(35, [&] {});
  sim.Run();
  const SymmetryReport report = SymmetryAuditor(mon).Audit("mem");
  EXPECT_EQ(report.instance_count, 2u);
  ASSERT_EQ(report.windows.size(), 3u);
  EXPECT_DOUBLE_EQ(report.worst_skew, 1.5);
  EXPECT_EQ(report.worst_skew_window, 1u);
  EXPECT_DOUBLE_EQ(report.FractionWithinSkew(1.25), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(report.FractionWithinSkew(1.5), 1.0);
}

TEST(SymmetryTest, SingleInstanceFamilyYieldsEmptyReport) {
  sim::Simulation sim;
  MetricsRegistry registry;
  MonitorConfig config;
  config.interval = 10;
  Monitor mon(sim, config);
  mon.WatchRegistry(&registry);
  sim.Schedule(1, [&] { registry.Gauge(InstanceGaugeName("solo", 0)) = 1; });
  sim.Schedule(10, [&] {});
  sim.Run();
  EXPECT_TRUE(SymmetryAuditor(mon).Audit("solo").windows.empty());
  EXPECT_TRUE(SymmetryAuditor(mon).Audit("unknown").windows.empty());
}

// --- SLO rule language ---

TEST(SloTest, ParsesFullGrammar) {
  std::string error;
  const auto rule = ParseSloRule(
      "skew(kv.mem_bytes) < 1.25 when sum(io.queued) > 0 for 95% of windows",
      &error);
  ASSERT_TRUE(rule.has_value()) << error;
  EXPECT_EQ(rule->condition.term.fn, SloFn::kSkew);
  EXPECT_EQ(rule->condition.term.arg, "kv.mem_bytes");
  EXPECT_EQ(rule->condition.op, SloOp::kLt);
  EXPECT_DOUBLE_EQ(rule->condition.threshold, 1.25);
  ASSERT_TRUE(rule->guard.has_value());
  EXPECT_EQ(rule->guard->term.fn, SloFn::kSum);
  EXPECT_EQ(rule->guard->op, SloOp::kGt);
  EXPECT_DOUBLE_EQ(rule->min_pass_fraction, 0.95);
}

TEST(SloTest, ParseDefaultsAndOperators) {
  const auto rule = ParseSloRule("value(kv.backlog/3) <= 64");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->condition.term.fn, SloFn::kValue);
  EXPECT_EQ(rule->condition.term.arg, "kv.backlog/3");
  EXPECT_EQ(rule->condition.op, SloOp::kLe);
  EXPECT_FALSE(rule->guard.has_value());
  EXPECT_DOUBLE_EQ(rule->min_pass_fraction, 1.0);
}

TEST(SloTest, RejectsMalformedRules) {
  std::string error;
  EXPECT_FALSE(ParseSloRule("", &error).has_value());
  EXPECT_FALSE(ParseSloRule("skew(x)", &error).has_value());
  EXPECT_FALSE(ParseSloRule("frob(x) < 1", &error).has_value());
  EXPECT_FALSE(ParseSloRule("skew(x) == 1", &error).has_value());
  EXPECT_FALSE(ParseSloRule("skew(x) < banana", &error).has_value());
  EXPECT_FALSE(ParseSloRule("skew(x) < 1 for 95%", &error).has_value());
  EXPECT_FALSE(error.empty());
}

// Monitor with two instances of "mem" and a "busy" gauge, over 4 windows:
//   window 0: mem balanced (10,10), busy 0
//   window 1: mem skewed   (10,30), busy 1
//   window 2: mem skewed   (30,90), busy 0
//   window 3: mem balanced (90,90), busy 1
struct SloFixture {
  sim::Simulation sim;
  MetricsRegistry registry;
  Monitor mon;

  SloFixture() : mon(sim, MonitorConfig{10, 100}) {
    mon.WatchRegistry(&registry);
    std::int64_t& a = registry.Gauge(InstanceGaugeName("mem", 0));
    std::int64_t& b = registry.Gauge(InstanceGaugeName("mem", 1));
    std::int64_t& busy = registry.Gauge("busy");
    sim.Schedule(1, [&] {
      a = 10;
      b = 10;
    });
    sim.Schedule(11, [&] {
      b = 30;
      busy = 1;
    });
    sim.Schedule(21, [&] {
      a = 30;
      b = 90;
      busy = 0;
    });
    sim.Schedule(31, [&] {
      a = 90;
      busy = 1;
    });
    sim.Schedule(45, [&] {});
    sim.Run();
  }
};

TEST(SloTest, EvaluatesPassFractionAndWorstWindow) {
  SloFixture fx;
  SloWatchdog watchdog(fx.mon);
  std::string error;
  ASSERT_TRUE(watchdog.AddRule("skew(mem) < 1.25 for 50% of windows", &error))
      << error;
  const std::vector<SloResult> results = watchdog.Evaluate();
  ASSERT_EQ(results.size(), 1u);
  const SloResult& r = results[0];
  EXPECT_EQ(r.windows_evaluated, 4u);
  EXPECT_EQ(r.windows_passed, 2u);
  EXPECT_DOUBLE_EQ(r.pass_fraction, 0.5);
  EXPECT_TRUE(r.satisfied);
  ASSERT_EQ(r.violations.size(), 2u);
  EXPECT_EQ(r.violations[0].window, 1u);
  EXPECT_EQ(r.violations[1].window, 2u);
  EXPECT_DOUBLE_EQ(r.worst_value, 1.5);  // both skewed windows hit 1.5
}

TEST(SloTest, GuardSkipsWindowsWhereItIsFalse) {
  SloFixture fx;
  SloWatchdog watchdog(fx.mon);
  // Only windows with busy > 0 (1 and 3) are evaluated; window 1 is skewed.
  ASSERT_TRUE(watchdog.AddRule("skew(mem) < 1.25 when value(busy) > 0"));
  const std::vector<SloResult> results = watchdog.Evaluate();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].windows_evaluated, 2u);
  EXPECT_EQ(results[0].windows_passed, 1u);
  EXPECT_FALSE(results[0].satisfied);  // default: 100% must pass
  ASSERT_EQ(results[0].violations.size(), 1u);
  EXPECT_EQ(results[0].violations[0].window, 1u);
}

TEST(SloTest, AggregateTermsAndHigherIsBetterDirection) {
  SloFixture fx;
  SloWatchdog watchdog(fx.mon);
  ASSERT_TRUE(watchdog.AddRule("sum(mem) > 15"));   // 20,40,120,180: all pass
  ASSERT_TRUE(watchdog.AddRule("max(mem) <= 30"));  // fails windows 2,3
  const std::vector<SloResult> results = watchdog.Evaluate();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].satisfied);
  EXPECT_EQ(results[0].windows_passed, 4u);
  EXPECT_FALSE(results[1].satisfied);
  EXPECT_EQ(results[1].windows_passed, 2u);
  EXPECT_DOUBLE_EQ(results[1].worst_value, 90.0);
}

TEST(SloTest, MissingSeriesSkipsWindowsNotWholeRule) {
  SloFixture fx;
  SloWatchdog watchdog(fx.mon);
  ASSERT_TRUE(watchdog.AddRule("value(ghost) < 1"));
  const std::vector<SloResult> results = watchdog.Evaluate();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].windows_evaluated, 0u);
  EXPECT_TRUE(results[0].satisfied);  // absence of evidence: not a failure
  EXPECT_TRUE(results[0].vacuous);    // ...but flagged, not silently passing
}

// --- SLO grammar edge cases ---

TEST(SloTest, MalformedRulesAreRejectedWithError) {
  const char* const kBad[] = {
      "",                              // empty
      "skew(mem)",                     // no comparison
      "skew(mem) <",                   // missing threshold
      "skew(mem) < banana",            // non-numeric threshold
      "skew mem < 1.25",               // missing parentheses
      "skew(mem < 1.25",               // unbalanced parenthesis
      "skew() < 1.25",                 // empty argument
      "skew(mem) == 1.25",             // unsupported operator
      "skew(mem) < 1.25 when",         // dangling guard
      "skew(mem) < 1.25 when cv(mem)", // guard without comparison
      "skew(mem) < 1.25 for",          // dangling for-clause
      "skew(mem) < 1.25 for pct% of windows",  // non-numeric percentage
      "skew(mem) < 1.25 for 95%",      // truncated for-clause
  };
  for (const char* text : kBad) {
    std::string error;
    EXPECT_FALSE(ParseSloRule(text, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(SloTest, UnknownFunctionIsAParseError) {
  std::string error;
  EXPECT_FALSE(ParseSloRule("median(mem) < 1.25", &error).has_value());
  EXPECT_NE(error.find("median"), std::string::npos) << error;
  SloFixture fx;
  SloWatchdog watchdog(fx.mon);
  EXPECT_FALSE(watchdog.AddRule("median(mem) < 1.25", &error));
  EXPECT_TRUE(watchdog.rules().empty());
}

TEST(SloTest, NeverMatchingGuardIsVacuousNotPassing) {
  SloFixture fx;
  SloWatchdog watchdog(fx.mon);
  // busy never exceeds 5, so the guard excludes every window.
  ASSERT_TRUE(watchdog.AddRule("skew(mem) < 1.25 when value(busy) > 5"));
  const std::vector<SloResult> results = watchdog.Evaluate();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].windows_evaluated, 0u);
  EXPECT_TRUE(results[0].satisfied);
  EXPECT_TRUE(results[0].vacuous);
  std::ostringstream report;
  SloWatchdog::PrintResults(results, report, /*csv=*/false);
  EXPECT_NE(report.str().find("VACUOUS"), std::string::npos) << report.str();
  EXPECT_EQ(report.str().find("PASS"), std::string::npos) << report.str();
}

TEST(SloTest, ForClauseWithZeroEvaluatedWindowsIsVacuous) {
  // A monitor that closed no windows at all: `for P%` has an empty
  // denominator and must report VACUOUS rather than claim a pass rate.
  sim::Simulation sim;
  MonitorConfig config;
  config.interval = 10;
  Monitor mon(sim, config);
  sim.Run();  // nothing scheduled: no window ever closes
  ASSERT_TRUE(mon.windows().empty());
  SloWatchdog watchdog(mon);
  ASSERT_TRUE(watchdog.AddRule("skew(mem) < 1.25 for 95% of windows"));
  const std::vector<SloResult> results = watchdog.Evaluate();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].windows_evaluated, 0u);
  EXPECT_DOUBLE_EQ(results[0].pass_fraction, 1.0);
  EXPECT_TRUE(results[0].satisfied);
  EXPECT_TRUE(results[0].vacuous);
}

TEST(SloTest, SatisfiedViolatedRuleIsNotVacuous) {
  SloFixture fx;
  SloWatchdog watchdog(fx.mon);
  ASSERT_TRUE(watchdog.AddRule("skew(mem) < 1.25"));  // fails windows 1,2
  const std::vector<SloResult> results = watchdog.Evaluate();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].satisfied);
  EXPECT_FALSE(results[0].vacuous);
  std::ostringstream report;
  SloWatchdog::PrintResults(results, report, /*csv=*/false);
  EXPECT_NE(report.str().find("FAIL"), std::string::npos) << report.str();
  EXPECT_EQ(report.str().find("VACUOUS"), std::string::npos) << report.str();
}

}  // namespace
}  // namespace memfs::monitor
