// Regression guards for the paper's headline claims, asserted end to end at
// reduced scale. EXPERIMENTS.md narrates these shapes; this suite makes them
// break the build if a future change loses one. Each test names the claim
// and the paper section it comes from.
#include <gtest/gtest.h>

#include "bench_common.h"
#include "common/stats.h"
#include "workloads/montage.h"

namespace memfs {
namespace {

using bench::EnvelopeCell;
using bench::EnvelopeCellParams;
using bench::RunEnvelopeCell;
using bench::RunWorkflowCell;
using bench::WorkflowCellParams;
using units::KiB;
using units::MiB;

EnvelopeCell Cell(workloads::FsKind kind, std::uint32_t nodes,
                  std::uint64_t file_size, std::uint32_t files,
                  bool remote = false) {
  EnvelopeCellParams params;
  params.kind = kind;
  params.nodes = nodes;
  params.file_size = file_size;
  params.files_per_proc = files;
  params.io_block = file_size >= MiB(64) ? MiB(1) : 0;
  params.meta_files_per_proc = 32;
  params.run_remote_read = remote;
  return RunEnvelopeCell(params);
}

// §4.1 / Fig. 4: MemFS beats AMFS on write and N-1 read at every file size.
TEST(PaperClaims, MemFsWinsWriteAndN1AtAllSizes) {
  for (std::uint64_t size : {KiB(1), MiB(1), MiB(128)}) {
    const auto mem = Cell(workloads::FsKind::kMemFs, 16, size,
                          size >= MiB(64) ? 1 : 8);
    const auto am = Cell(workloads::FsKind::kAmfs, 16, size,
                         size >= MiB(64) ? 1 : 8);
    EXPECT_GT(mem.write.BandwidthMBps(), am.write.BandwidthMBps()) << size;
    EXPECT_GT(mem.readn1.BandwidthMBps(), am.readn1.BandwidthMBps()) << size;
  }
}

// §4.1 / Fig. 4c: the one metric AMFS wins — 1-1 reads of large files.
TEST(PaperClaims, AmfsWinsLargeFileLocalReadsOnly) {
  const auto mem_small = Cell(workloads::FsKind::kMemFs, 16, KiB(1), 8);
  const auto am_small = Cell(workloads::FsKind::kAmfs, 16, KiB(1), 8);
  EXPECT_GT(mem_small.read11.BandwidthMBps(),
            am_small.read11.BandwidthMBps());

  // The large-file crossover appears at scale (Fig. 4c crosses at 64
  // nodes): AMFS streams locally at a flat per-node rate while MemFS's
  // remote reads see growing contention transients.
  const auto mem_big = Cell(workloads::FsKind::kMemFs, 64, MiB(128), 1);
  const auto am_big = Cell(workloads::FsKind::kAmfs, 64, MiB(128), 1);
  EXPECT_GT(am_big.read11.BandwidthMBps(), mem_big.read11.BandwidthMBps());
}

// §4.1 / Table 1: losing locality costs AMFS ~4x; MemFS beats the degraded
// AMFS by >4x on the premium fabric.
TEST(PaperClaims, RemoteReadPenaltyRatios) {
  const auto am = Cell(workloads::FsKind::kAmfs, 16, MiB(1), 8,
                       /*remote=*/true);
  const auto mem = Cell(workloads::FsKind::kMemFs, 16, MiB(1), 8);
  const double degradation =
      am.read11.BandwidthMBps() / am.read11_remote.BandwidthMBps();
  EXPECT_GT(degradation, 3.0);
  EXPECT_GT(mem.read11.BandwidthMBps(),
            am.read11_remote.BandwidthMBps() * 3.0);
}

// §4.1 / Fig. 5: the AMFS accounting artifact — N-1 throughput equals 1-1
// (multicast charged to bandwidth only).
TEST(PaperClaims, AmfsN1ThroughputEqualsOneToOne) {
  const auto am = Cell(workloads::FsKind::kAmfs, 8, MiB(1), 4);
  EXPECT_NEAR(am.readn1.OpsPerSec(), am.read11.OpsPerSec(),
              am.read11.OpsPerSec() * 0.05);
  EXPECT_LT(am.readn1.BandwidthMBps(), am.read11.BandwidthMBps() / 2);
}

// §4.1 / Fig. 6: MemFS open beats MemFS create; AMFS open beats everything.
TEST(PaperClaims, MetadataRelationships) {
  const auto mem = Cell(workloads::FsKind::kMemFs, 16, KiB(1), 1);
  const auto am = Cell(workloads::FsKind::kAmfs, 16, KiB(1), 1);
  EXPECT_GT(mem.open.OpsPerSec(), mem.create.OpsPerSec());
  EXPECT_GT(am.open.OpsPerSec(), mem.open.OpsPerSec());
}

// §4.2: MemFS completes Montage faster than AMFS and scales further; its
// per-node storage stays balanced while AMFS concentrates data.
TEST(PaperClaims, MontageFasterAndBalanced) {
  workloads::MontageParams m6;
  m6.degree = 6;
  m6.task_scale = 16;
  m6.size_scale = 16;
  m6.project_cpu_s = 2.0;
  const auto workflow = workloads::BuildMontage(m6);

  WorkflowCellParams params;
  params.nodes = 8;
  params.cores_per_node = 4;
  params.kind = workloads::FsKind::kMemFs;
  const auto mem = RunWorkflowCell(params, workflow);
  params.kind = workloads::FsKind::kAmfs;
  const auto am = RunWorkflowCell(params, workflow);

  ASSERT_TRUE(mem.result.status.ok());
  ASSERT_TRUE(am.result.status.ok());
  EXPECT_LT(mem.result.MakespanSeconds(), am.result.MakespanSeconds());

  RunningStats mem_balance;
  RunningStats am_balance;
  for (std::uint32_t n = 0; n < 8; ++n) {
    mem_balance.Add(static_cast<double>(mem.bed->NodeMemoryUsed(n)));
    am_balance.Add(static_cast<double>(am.bed->NodeMemoryUsed(n)));
  }
  EXPECT_LT(mem_balance.cv(), 0.25);
  EXPECT_GT(am_balance.cv(), mem_balance.cv() * 2);
  EXPECT_GT(am.bed->TotalMemoryUsed(), mem.bed->TotalMemoryUsed());
}

// §4.2.2 / Fig. 10: a single FUSE mountpoint caps vertical scaling of the
// I/O-bound stages; per-process mounts restore it.
TEST(PaperClaims, FuseMountpointCeiling) {
  workloads::MontageParams m6;
  m6.degree = 6;
  m6.task_scale = 32;
  m6.size_scale = 16;
  m6.project_cpu_s = 1.0;
  const auto workflow = workloads::BuildMontage(m6);

  auto run = [&](std::uint32_t mounts) {
    WorkflowCellParams params;
    params.fabric = workloads::Fabric::kEc2TenGbE;
    params.nodes = 4;
    params.cores_per_node = 32;
    params.io_block = units::KiB(4);
    params.memfs.fuse.mounts_per_node = mounts;
    params.memfs.fuse.op_cost = units::Micros(25);
    params.memfs.fuse.contention_factor = 0.30;
    return RunWorkflowCell(params, workflow).result.MakespanSeconds();
  };
  EXPECT_GT(run(1), run(32) * 15 / 10);
}

// §4.2.2 / Fig. 16: system bandwidth is twice the application bandwidth
// (every application byte is also memcached traffic).
TEST(PaperClaims, SystemBandwidthTwiceApplication) {
  workloads::TestbedConfig config;
  config.nodes = 8;
  workloads::Testbed bed(workloads::FsKind::kMemFs, config);
  workloads::EnvelopeParams env;
  env.nodes = 8;
  env.file_size = MiB(2);
  env.files_per_proc = 2;
  workloads::EnvelopeBench bench(bed.simulation(), bed.vfs(), env, nullptr);
  const auto write = bench.RunWrite();
  const auto read = bench.RunRead11(1);
  const std::uint64_t app_bytes = write.bytes + read.bytes;
  // Every application byte crossed the wire once (flow accounting counts
  // each byte once); at the NIC level it appears at a sender AND a receiver,
  // which is the paper's "system bandwidth = 2x application bandwidth".
  EXPECT_NEAR(static_cast<double>(bed.network().total_bytes()),
              static_cast<double>(app_bytes),
              0.15 * static_cast<double>(app_bytes));
}

}  // namespace
}  // namespace memfs
