// Tests for the FUSE mountpoint model: serialization, contention growth,
// multi-mount scaling, and the disabled mode.
#include <gtest/gtest.h>

#include "common/units.h"
#include "memfs/fuse.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "test_util.h"

namespace memfs::fs {
namespace {

using units::Micros;

sim::Task HammerMount(sim::Simulation&, FuseLayer& fuse, net::NodeId node,
                      std::uint32_t process, int requests,
                      sim::WaitGroup& wg) {
  for (int i = 0; i < requests; ++i) {
    co_await fuse.Enter(node, process);
  }
  wg.Done();
}

sim::SimTime RunHammer(FuseConfig config, std::uint32_t procs, int requests) {
  sim::Simulation sim;
  FuseLayer fuse(sim, /*nodes=*/1, config);
  sim::WaitGroup wg(sim);
  for (std::uint32_t p = 0; p < procs; ++p) {
    wg.Add();
    HammerMount(sim, fuse, 0, p, requests, wg);
  }
  sim.Run();
  EXPECT_EQ(fuse.requests_served(),
            static_cast<std::uint64_t>(procs) * requests);
  return sim.now();
}

TEST(FuseLayerTest, SingleRequestPaysOpCost) {
  FuseConfig config;
  config.op_cost = Micros(3);
  EXPECT_EQ(RunHammer(config, 1, 1), Micros(3));
}

TEST(FuseLayerTest, UncontendedRequestsSerializeAtOpCost) {
  FuseConfig config;
  config.op_cost = Micros(3);
  config.contention_factor = 0.0;
  // One process, sequential: N * cost.
  EXPECT_EQ(RunHammer(config, 1, 100), Micros(300));
}

TEST(FuseLayerTest, SingleMountSerializesProcesses) {
  FuseConfig config;
  config.op_cost = Micros(10);
  config.contention_factor = 0.0;
  config.mounts_per_node = 1;
  // 4 processes x 10 requests through one lock = 400us total.
  EXPECT_EQ(RunHammer(config, 4, 10), Micros(400));
}

TEST(FuseLayerTest, PerProcessMountsRunInParallel) {
  FuseConfig config;
  config.op_cost = Micros(10);
  config.contention_factor = 0.0;
  config.mounts_per_node = 4;
  // 4 processes on 4 mounts: wall time = one process's serial time.
  EXPECT_EQ(RunHammer(config, 4, 10), Micros(100));
}

TEST(FuseLayerTest, ContentionLengthensCriticalSection) {
  FuseConfig base;
  base.op_cost = Micros(10);
  base.contention_factor = 0.0;
  FuseConfig contended = base;
  contended.contention_factor = 0.3;
  // With waiters piling up on one mount, the contended configuration must
  // be strictly slower — the NUMA spinlock effect of Fig. 10a.
  const auto fair = RunHammer(base, 8, 20);
  const auto slow = RunHammer(contended, 8, 20);
  EXPECT_GT(slow, fair + fair / 2);
}

TEST(FuseLayerTest, ContentionVanishesWithPerProcessMounts) {
  FuseConfig config;
  config.op_cost = Micros(10);
  config.contention_factor = 0.3;
  config.mounts_per_node = 8;
  // No two processes share a mount -> no waiters -> no penalty.
  EXPECT_EQ(RunHammer(config, 8, 20), Micros(200));
}

TEST(FuseLayerTest, DisabledModeIsFree) {
  FuseConfig config;
  config.enabled = false;
  EXPECT_EQ(RunHammer(config, 8, 50), 0u);
}

TEST(FuseLayerTest, ProcessesMapToMountsRoundRobin) {
  FuseConfig config;
  config.op_cost = Micros(10);
  config.contention_factor = 0.0;
  config.mounts_per_node = 2;
  // 4 processes over 2 mounts: two pairs, each serialized -> 200us.
  EXPECT_EQ(RunHammer(config, 4, 10), Micros(200));
}

TEST(FuseLayerTest, NodesAreIndependent) {
  FuseConfig config;
  config.op_cost = Micros(10);
  config.contention_factor = 0.0;
  sim::Simulation sim;
  FuseLayer fuse(sim, /*nodes=*/4, config);
  sim::WaitGroup wg(sim);
  for (net::NodeId node = 0; node < 4; ++node) {
    wg.Add();
    HammerMount(sim, fuse, node, 0, 10, wg);
  }
  sim.Run();
  // Different nodes never share a mount.
  EXPECT_EQ(sim.now(), Micros(100));
}

}  // namespace
}  // namespace memfs::fs
