// Incremental-vs-exact solver equivalence (ISSUE 9 property test).
//
// Two identically configured networks run the same randomized schedule of
// flow arrivals, time advances, and link-fault toggles in lockstep; one arm
// uses the incremental dirty-set solver, the other the from-scratch exact
// oracle (SetExactReallocate). After every step the in-flight rate vectors
// must agree to ≤1e-9 relative error on the flows both arms still carry —
// near-simultaneous completions may momentarily differ by one flow when a
// rate differs in the last ulp, which is why the comparison is keyed by flow
// id rather than by count.
//
// A separate fuzz case flips a single network between the two solver arms
// mid-run and checks the run still drains cleanly with exact-oracle rates.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/units.h"
#include "net/fluid_network.h"
#include "net/network.h"
#include "sim/future.h"
#include "sim/simulation.h"

namespace memfs::net {
namespace {

using sim::SimTime;
using units::GB;
using units::KiB;
using units::MB;
using units::Micros;
using units::Millis;

constexpr double kRelTolerance = 1e-9;

NetworkConfig RandomConfig(Rng& rng) {
  NetworkConfig config;
  config.nodes = static_cast<std::uint32_t>(2 + rng.Below(7));  // 2..8
  config.nic_bandwidth = GB(1 + rng.Below(4));
  config.local_bandwidth = GB(10);
  // Roughly half the sequences run with a constraining core fabric so the
  // water-filling cascade actually crosses components.
  if (rng.Below(2) == 0) {
    config.fabric_bandwidth = config.nic_bandwidth * (1 + rng.Below(3));
  }
  config.remote_latency = Micros(50);
  config.local_latency = Micros(5);
  return config;
}

// One lockstep arm: a simulation, a network, and the futures keeping the
// in-flight transfers' shared state alive.
template <typename NetworkT>
struct Arm {
  Arm(const NetworkConfig& config, bool exact)
      : network(sim, config) {
    network.SetExactReallocate(exact);
  }

  sim::Simulation sim;
  NetworkT network;
  std::vector<sim::VoidFuture> pending;
};

// Asserts the two rate vectors agree on every flow id present in both.
// Returns the number of common flows (so callers can assert coverage).
template <typename NetworkT>
std::size_t ExpectRatesMatch(Arm<NetworkT>& incremental, Arm<NetworkT>& exact,
                             const std::string& context) {
  const auto a = incremental.network.SnapshotFlows();
  const auto b = exact.network.SnapshotFlows();  // both sorted by id
  std::size_t common = 0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.size() && ib < b.size()) {
    if (a[ia].id < b[ib].id) {
      ++ia;
      continue;
    }
    if (b[ib].id < a[ia].id) {
      ++ib;
      continue;
    }
    const double ra = a[ia].rate;
    const double rb = b[ib].rate;
    const double scale = std::max({std::abs(ra), std::abs(rb), 1.0});
    EXPECT_LE(std::abs(ra - rb), kRelTolerance * scale)
        << context << " flow id " << a[ia].id << ": incremental rate " << ra
        << " vs exact rate " << rb;
    ++common;
    ++ia;
    ++ib;
  }
  // The arms may disagree by at most the flows completing "right now";
  // wholesale divergence means the schedule replay itself broke.
  EXPECT_LE(a.size() > b.size() ? a.size() - b.size() : b.size() - a.size(),
            2u)
      << context << ": arms diverged (" << a.size() << " vs " << b.size()
      << " flows in flight)";
  return common;
}

// Replays one randomized arrival/advance/fault schedule through both arms.
template <typename NetworkT>
void RunLockstepSequence(std::uint64_t seed) {
  Rng rng(seed);
  const NetworkConfig config = RandomConfig(rng);
  Arm<NetworkT> incremental(config, /*exact=*/false);
  Arm<NetworkT> exact(config, /*exact=*/true);

  const int steps = 6 + static_cast<int>(rng.Below(10));
  SimTime now = 0;
  for (int step = 0; step < steps; ++step) {
    const std::uint64_t op = rng.Below(8);
    if (op < 4) {
      // Arrival: same (src, dst, bytes) into both arms.
      const auto src = static_cast<NodeId>(rng.Below(config.nodes));
      const auto dst = static_cast<NodeId>(rng.Below(config.nodes));
      const std::uint64_t bytes = KiB(64) + rng.Below(MB(8));
      incremental.pending.push_back(
          incremental.network.Transfer(src, dst, bytes));
      exact.pending.push_back(exact.network.Transfer(src, dst, bytes));
    } else if (op < 7) {
      // Advance both clocks to the same instant; completions fire here.
      now += Micros(20) + rng.Below(Millis(4));
      incremental.sim.RunUntil(now);
      exact.sim.RunUntil(now);
    } else {
      // Latency fault on a random link (loss is an RPC-layer concern and
      // never consulted by Transfer, so extra latency is the fault that
      // exercises the flow path).
      const auto src = static_cast<NodeId>(rng.Below(config.nodes));
      const auto dst = static_cast<NodeId>(rng.Below(config.nodes));
      if (rng.Below(3) == 0) {
        incremental.network.ClearLinkFault(src, dst);
        exact.network.ClearLinkFault(src, dst);
      } else {
        LinkFault fault;
        fault.extra_latency = Micros(10) + rng.Below(Millis(1));
        incremental.network.SetLinkFault(src, dst, fault);
        exact.network.SetLinkFault(src, dst, fault);
      }
    }
    ExpectRatesMatch(incremental, exact,
                     "seed " + std::to_string(seed) + " step " +
                         std::to_string(step));
    if (::testing::Test::HasFailure()) return;  // first divergence is enough
  }

  // Drain both arms; every transfer must complete in each.
  incremental.sim.Run();
  exact.sim.Run();
  for (auto& f : incremental.pending) EXPECT_TRUE(f.ready());
  for (auto& f : exact.pending) EXPECT_TRUE(f.ready());
  EXPECT_EQ(incremental.network.total_bytes(), exact.network.total_bytes());
}

template <typename NetworkT>
class SolverEquivalenceTest : public ::testing::Test {};

using NetworkTypes = ::testing::Types<FairShareNetwork, WaterfillNetwork>;
TYPED_TEST_SUITE(SolverEquivalenceTest, NetworkTypes);

// 1000 randomized sequences (500 per network type keeps the two suites'
// total at the issue's 1000 while covering both solver families).
TYPED_TEST(SolverEquivalenceTest, IncrementalMatchesExactOracle) {
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    RunLockstepSequence<TypeParam>(0x501Fe5ull * 1000 + seed);
    if (::testing::Test::HasFailure()) {
      FAIL() << "first failing seed: " << seed;
    }
  }
}

// Fuzz: one network flips between solver arms mid-run. Every Reallocate
// recomputes (at least) the dirty flows from current capacities, so rates
// after any flip must match a never-flipped exact oracle run in lockstep.
TYPED_TEST(SolverEquivalenceTest, SolverFlipMidRunIsSeamless) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    Rng rng(0xF11Bull * 7919 + seed);
    const NetworkConfig config = RandomConfig(rng);
    Arm<TypeParam> flipping(config, /*exact=*/false);
    Arm<TypeParam> oracle(config, /*exact=*/true);

    SimTime now = 0;
    for (int step = 0; step < 12; ++step) {
      // Flip the solver arm at random points; the oracle arm never flips.
      if (rng.Below(3) == 0) {
        flipping.network.SetExactReallocate(
            !flipping.network.exact_reallocate());
      }
      if (rng.Below(2) == 0) {
        const auto src = static_cast<NodeId>(rng.Below(config.nodes));
        const auto dst = static_cast<NodeId>(rng.Below(config.nodes));
        const std::uint64_t bytes = KiB(256) + rng.Below(MB(4));
        flipping.pending.push_back(
            flipping.network.Transfer(src, dst, bytes));
        oracle.pending.push_back(oracle.network.Transfer(src, dst, bytes));
      } else {
        now += Micros(50) + rng.Below(Millis(2));
        flipping.sim.RunUntil(now);
        oracle.sim.RunUntil(now);
      }
      ExpectRatesMatch(flipping, oracle,
                       "flip seed " + std::to_string(seed) + " step " +
                           std::to_string(step));
      if (::testing::Test::HasFailure()) return;
    }

    flipping.sim.Run();
    oracle.sim.Run();
    for (auto& f : flipping.pending) EXPECT_TRUE(f.ready());
    EXPECT_EQ(flipping.network.total_bytes(), oracle.network.total_bytes());
  }
}

}  // namespace
}  // namespace memfs::net
