// Tests for the fluid network models: single-flow timing, NIC sharing,
// incast, loopback, fabric caps, and fair-share vs water-filling semantics.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/units.h"
#include "net/fluid_network.h"
#include "net/network.h"
#include "net/rpc.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace memfs::net {
namespace {

using sim::SimTime;
using units::GB;
using units::MB;
using units::Micros;
using units::Millis;
using units::Seconds;

NetworkConfig TestConfig(std::uint32_t nodes) {
  NetworkConfig config;
  config.nodes = nodes;
  config.nic_bandwidth = GB(1);
  config.local_bandwidth = GB(10);
  config.remote_latency = Micros(50);
  config.local_latency = Micros(5);
  return config;
}

// Runs a transfer to completion and returns its duration.
SimTime TimeTransfer(Network& network, sim::Simulation& sim, NodeId src,
                     NodeId dst, std::uint64_t bytes) {
  const SimTime start = sim.now();
  auto future = network.Transfer(src, dst, bytes);
  sim.Run();
  EXPECT_TRUE(future.ready());
  return sim.now() - start;
}

template <typename NetworkT>
class FluidNetworkTest : public ::testing::Test {};

using NetworkTypes = ::testing::Types<FairShareNetwork, WaterfillNetwork>;
TYPED_TEST_SUITE(FluidNetworkTest, NetworkTypes);

TYPED_TEST(FluidNetworkTest, SingleFlowTakesLatencyPlusSize) {
  sim::Simulation sim;
  TypeParam network(sim, TestConfig(2));
  // 1 MB at 1 GB/s = 1 ms, plus 50 us latency.
  const SimTime took = TimeTransfer(network, sim, 0, 1, MB(1));
  EXPECT_NEAR(double(took), double(Micros(50) + Millis(1)), double(Micros(1)));
}

TYPED_TEST(FluidNetworkTest, ZeroByteTransferIsPureLatency) {
  sim::Simulation sim;
  TypeParam network(sim, TestConfig(2));
  EXPECT_EQ(TimeTransfer(network, sim, 0, 1, 0), Micros(50));
}

TYPED_TEST(FluidNetworkTest, LoopbackUsesLocalPath) {
  sim::Simulation sim;
  TypeParam network(sim, TestConfig(2));
  // 10 MB at 10 GB/s = 1 ms, plus 5 us local latency.
  const SimTime took = TimeTransfer(network, sim, 1, 1, MB(10));
  EXPECT_NEAR(double(took), double(Micros(5) + Millis(1)), double(Micros(1)));
}

TYPED_TEST(FluidNetworkTest, TwoFlowsShareEgress) {
  sim::Simulation sim;
  TypeParam network(sim, TestConfig(3));
  // Node 0 sends 1 MB to nodes 1 and 2 simultaneously: both bottleneck on
  // node 0's egress, each gets 500 MB/s -> 2 ms + latency.
  auto f1 = network.Transfer(0, 1, MB(1));
  auto f2 = network.Transfer(0, 2, MB(1));
  sim.Run();
  EXPECT_TRUE(f1.ready() && f2.ready());
  EXPECT_NEAR(double(sim.now()), double(Micros(50) + Millis(2)),
              double(Micros(5)));
}

TYPED_TEST(FluidNetworkTest, IncastSharesIngress) {
  sim::Simulation sim;
  TypeParam network(sim, TestConfig(5));
  // Nodes 1..4 each send 1 MB to node 0: ingress of node 0 splits 4 ways.
  for (NodeId n = 1; n <= 4; ++n) (void)network.Transfer(n, 0, MB(1));
  sim.Run();
  EXPECT_NEAR(double(sim.now()), double(Micros(50) + Millis(4)),
              double(Micros(10)));
}

TYPED_TEST(FluidNetworkTest, DisjointPairsDoNotInterfere) {
  sim::Simulation sim;
  TypeParam network(sim, TestConfig(4));
  // 0->1 and 2->3 share nothing on a full-bisection fabric.
  auto f1 = network.Transfer(0, 1, MB(1));
  auto f2 = network.Transfer(2, 3, MB(1));
  sim.Run();
  EXPECT_NEAR(double(sim.now()), double(Micros(50) + Millis(1)),
              double(Micros(5)));
  EXPECT_TRUE(f1.ready() && f2.ready());
}

TYPED_TEST(FluidNetworkTest, FabricCapLimitsAggregate) {
  sim::Simulation sim;
  auto config = TestConfig(4);
  config.fabric_bandwidth = GB(1);  // blocking core: 1 GB/s total
  TypeParam network(sim, config);
  // Two disjoint pairs now share the 1 GB/s core: 500 MB/s each -> 2 ms.
  (void)network.Transfer(0, 1, MB(1));
  (void)network.Transfer(2, 3, MB(1));
  sim.Run();
  EXPECT_NEAR(double(sim.now()), double(Micros(50) + Millis(2)),
              double(Micros(10)));
}

TYPED_TEST(FluidNetworkTest, StaggeredFlowsRecomputeRates) {
  sim::Simulation sim;
  TypeParam network(sim, TestConfig(3));
  // Flow A starts alone; halfway through, flow B joins on the same egress.
  auto fa = network.Transfer(0, 1, MB(1));
  bool second_done = false;
  sim.Schedule(Micros(550), [&] {
    auto fb = network.Transfer(0, 2, MB(1));
    (void)fb;
    second_done = true;
  });
  sim.Run();
  EXPECT_TRUE(fa.ready());
  EXPECT_TRUE(second_done);
  // A: 50us latency + 500us alone (0.5 MB) + ~1ms shared (0.5 MB at 500MB/s)
  // -> finishes ~1.55ms. B finishes after its remaining bytes run alone.
  EXPECT_GT(sim.now(), Millis(1));
  EXPECT_LT(sim.now(), Millis(3));
}

TYPED_TEST(FluidNetworkTest, AccountingTracksBytes) {
  sim::Simulation sim;
  TypeParam network(sim, TestConfig(3));
  (void)network.Transfer(0, 1, MB(2));
  (void)network.Transfer(2, 1, MB(3));
  (void)network.Transfer(1, 1, MB(5));  // loopback counts both directions
  sim.Run();
  EXPECT_EQ(network.bytes_sent(0), MB(2));
  EXPECT_EQ(network.bytes_sent(2), MB(3));
  EXPECT_EQ(network.bytes_received(1), MB(10));
  EXPECT_EQ(network.bytes_sent(1), MB(5));
  EXPECT_EQ(network.total_bytes(), MB(10));
  EXPECT_EQ(network.active_flows(), 0u);
}

TYPED_TEST(FluidNetworkTest, ManySmallTransfersAllComplete) {
  sim::Simulation sim;
  TypeParam network(sim, TestConfig(8));
  std::vector<sim::VoidFuture> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(network.Transfer(i % 8, (i + 3) % 8, 1024 + i));
  }
  sim.Run();
  for (const auto& f : futures) EXPECT_TRUE(f.ready());
  EXPECT_EQ(network.active_flows(), 0u);
}

// Water-filling redistributes capacity that fair-share leaves unused: flows
// A(0->1) and B(0->2) share node 0's egress; B additionally competes with
// C(3->2) and D(4->2) for node 2's ingress and is stuck at 1/3 of line rate.
// Fair-share still charges A half of the egress (500 MB/s); max-min hands
// B's unused egress share to A (2/3 of line rate).
TEST(WaterfillVsFairShare, WaterfillRedistributes) {
  auto run = [](auto& network, sim::Simulation& sim) {
    auto fa = network.Transfer(0, 1, MB(10));
    auto fb = network.Transfer(0, 2, MB(10));
    auto fc = network.Transfer(3, 2, MB(10));
    auto fd = network.Transfer(4, 2, MB(10));
    (void)fb;
    (void)fc;
    (void)fd;
    SimTime a_done = 0;
    [](sim::VoidFuture f, sim::Simulation& s, SimTime& out) -> sim::Task {
      co_await f;
      out = s.now();
    }(fa, sim, a_done);
    sim.Run();
    return a_done;
  };

  sim::Simulation sim_fair;
  FairShareNetwork fair(sim_fair, TestConfig(5));
  const SimTime fair_a = run(fair, sim_fair);

  sim::Simulation sim_water;
  WaterfillNetwork water(sim_water, TestConfig(5));
  const SimTime water_a = run(water, sim_water);

  // Fair-share: A gets egress/2 = 500 MB/s -> 20 ms.
  EXPECT_NEAR(double(fair_a), double(Micros(50) + Millis(20)),
              double(Millis(1)));
  // Water-filling: A gets ~667 MB/s -> 15 ms.
  EXPECT_NEAR(double(water_a), double(Micros(50) + Millis(15)),
              double(Millis(1)));
}

TEST(TopologyPresetTest, PresetsMatchPaperNumbers) {
  const auto ipoib = Das4Ipoib(64);
  EXPECT_EQ(ipoib.nodes, 64u);
  EXPECT_EQ(ipoib.nic_bandwidth, GB(1));
  const auto gbe = Das4GbE(64);
  EXPECT_EQ(gbe.nic_bandwidth, MB(125));
  const auto ec2 = Ec2TenGbE(32);
  EXPECT_EQ(ec2.nic_bandwidth, GB(1));
  EXPECT_GT(ec2.remote_latency, ipoib.remote_latency);
}

TEST(RpcTest, CallPaysBothLegsAndServiceTime) {
  sim::Simulation sim;
  FairShareNetwork network(sim, TestConfig(2));
  Rpc rpc(sim, network);
  RpcOptions options;
  options.request_bytes = 0;
  options.response_bytes = MB(1);
  options.server_time = Micros(100);
  auto future = rpc.Call(0, 1, options);
  sim.Run();
  EXPECT_TRUE(future.ready());
  // req latency 50us + service 100us + response 50us + 1ms payload.
  EXPECT_NEAR(double(sim.now()), double(Micros(200) + Millis(1)),
              double(Micros(5)));
  EXPECT_EQ(rpc.calls_issued(), 1u);
}

TEST(DeterminismTest, NetworkRunsAreBitIdentical) {
  auto run = [] {
    sim::Simulation sim;
    FairShareNetwork network(sim, TestConfig(6));
    for (int i = 0; i < 100; ++i) {
      (void)network.Transfer(i % 6, (i * 7 + 1) % 6, 10000 + i * 37);
    }
    sim.Run();
    return std::pair{sim.now(), sim.events_processed()};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace memfs::net
