// Unit + property tests for the hash functions and the key-to-server
// distribution strategies.
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "hash/distributor.h"
#include "hash/hash.h"

namespace memfs::hash {
namespace {

// --- Known-answer tests ---

TEST(HashTest, Fnv1aKnownVectors) {
  // Canonical FNV-1a 64 test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(HashTest, Crc32cKnownVectors) {
  // RFC 3720 / iSCSI test vector: 32 bytes of zero.
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8a9136aau);
  // "123456789" is the classic check value.
  EXPECT_EQ(Crc32c("123456789"), 0xe3069283u);
}

TEST(HashTest, Murmur3Deterministic) {
  EXPECT_EQ(Murmur3_64("hello"), Murmur3_64("hello"));
  EXPECT_NE(Murmur3_64("hello"), Murmur3_64("hellp"));
  EXPECT_NE(Murmur3_64("hello", 1), Murmur3_64("hello", 2));
}

TEST(HashTest, JenkinsDeterministic) {
  EXPECT_EQ(JenkinsLookup3("abcdefghijklm"), JenkinsLookup3("abcdefghijklm"));
  EXPECT_NE(JenkinsLookup3("abcdefghijklm"), JenkinsLookup3("abcdefghijkln"));
}

TEST(HashTest, AllKindsHandleAllLengths) {
  // Exercise every tail-length branch (lookup3 and murmur switch on
  // length % block).
  const std::string base = "0123456789abcdefghijklmnopqrstuvwxyz";
  for (HashKind kind :
       {HashKind::kFnv1a64, HashKind::kMurmur3_64, HashKind::kJenkinsLookup3,
        HashKind::kCrc32c}) {
    std::set<std::uint64_t> seen;
    for (std::size_t len = 0; len <= base.size(); ++len) {
      seen.insert(HashKey(kind, std::string_view(base).substr(0, len)));
    }
    // All prefixes distinct (no trivial collisions across lengths).
    EXPECT_EQ(seen.size(), base.size() + 1) << ToString(kind);
  }
}

// --- Distribution quality (property-style, parameterized over hash kinds) ---

class HashKindTest : public ::testing::TestWithParam<HashKind> {};

TEST_P(HashKindTest, StripeKeysSpreadUniformly) {
  // The actual MemFS key population: "<path>#<stripe>".
  const std::uint32_t servers = 64;
  std::vector<std::uint64_t> load(servers, 0);
  for (int file = 0; file < 200; ++file) {
    for (int stripe = 0; stripe < 100; ++stripe) {
      const std::string key = "/montage/proj/p_" + std::to_string(file) +
                              ".fits#" + std::to_string(stripe);
      ++load[HashKey(GetParam(), key) % servers];
    }
  }
  RunningStats stats;
  for (auto l : load) stats.Add(static_cast<double>(l));
  // Coefficient of variation below 10% across 64 servers.
  EXPECT_LT(stats.cv(), 0.10) << ToString(GetParam());
  for (auto l : load) EXPECT_GT(l, 0u);
}

TEST_P(HashKindTest, AvalancheOnLastCharacter) {
  // Keys differing in one character should map to many different servers.
  const std::uint32_t servers = 16;
  std::set<std::uint32_t> hit;
  for (char c = 'a'; c <= 'z'; ++c) {
    std::string key = "/data/file_x";
    key.back() = c;
    hit.insert(static_cast<std::uint32_t>(HashKey(GetParam(), key) % servers));
  }
  // CRC32C is linear in its input, so single-character flips reach fewer
  // residues than the mixing hashes; 8 of 16 is still acceptable spread.
  EXPECT_GE(hit.size(), 8u) << ToString(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, HashKindTest,
                         ::testing::Values(HashKind::kFnv1a64,
                                           HashKind::kMurmur3_64,
                                           HashKind::kJenkinsLookup3,
                                           HashKind::kCrc32c),
                         [](const auto& info) {
                           return std::string(ToString(info.param));
                         });

// --- Modulo distributor ---

TEST(ModuloDistributorTest, InRangeAndDeterministic) {
  ModuloDistributor dist(7);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "key" + std::to_string(i);
    const auto s = dist.ServerFor(key);
    EXPECT_LT(s, 7u);
    EXPECT_EQ(s, dist.ServerFor(key));
  }
}

TEST(ModuloDistributorTest, SingleServerGetsEverything) {
  ModuloDistributor dist(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(dist.ServerFor("k" + std::to_string(i)), 0u);
  }
}

TEST(ModuloDistributorTest, BalancedOverStripeKeys) {
  ModuloDistributor dist(32);
  std::vector<int> load(32, 0);
  for (int f = 0; f < 500; ++f) {
    for (int s = 0; s < 8; ++s) {
      ++load[dist.ServerFor("/f" + std::to_string(f) + "#" +
                            std::to_string(s))];
    }
  }
  RunningStats stats;
  for (int l : load) stats.Add(l);
  EXPECT_LT(stats.cv(), 0.10);
}

// --- Ketama (consistent hashing) ---

TEST(KetamaDistributorTest, InRangeAndDeterministic) {
  KetamaDistributor dist(9, 160);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key" + std::to_string(i);
    const auto s = dist.ServerFor(key);
    EXPECT_LT(s, 9u);
    EXPECT_EQ(s, dist.ServerFor(key));
  }
}

TEST(KetamaDistributorTest, ReasonablyBalanced) {
  KetamaDistributor dist(16, 160);
  std::vector<int> load(16, 0);
  for (int i = 0; i < 32000; ++i) {
    ++load[dist.ServerFor("obj-" + std::to_string(i))];
  }
  RunningStats stats;
  for (int l : load) stats.Add(l);
  // Virtual nodes keep imbalance moderate (not as tight as modulo).
  EXPECT_LT(stats.cv(), 0.35);
  for (int l : load) EXPECT_GT(l, 0);
}

TEST(KetamaDistributorTest, MinimalRemappingOnGrowth) {
  // The property the paper cites consistent hashing for: adding a server
  // moves only ~1/(N+1) of the keys, vs ~N/(N+1) for modulo.
  const int keys = 20000;
  KetamaDistributor before(10, 160);
  KetamaDistributor after(11, 160);
  ModuloDistributor mod_before(10);
  ModuloDistributor mod_after(11);

  int ketama_moved = 0;
  int modulo_moved = 0;
  for (int i = 0; i < keys; ++i) {
    const std::string key = "/wf/file_" + std::to_string(i) + "#0";
    ketama_moved += before.ServerFor(key) != after.ServerFor(key);
    modulo_moved += mod_before.ServerFor(key) != mod_after.ServerFor(key);
  }
  const double ketama_frac = double(ketama_moved) / keys;
  const double modulo_frac = double(modulo_moved) / keys;
  EXPECT_LT(ketama_frac, 0.20);   // ~1/11 expected
  EXPECT_GT(modulo_frac, 0.80);   // nearly everything moves
}

TEST(KetamaDistributorTest, RemappedKeysGoOnlyToNewServer) {
  KetamaDistributor before(8, 160);
  KetamaDistributor after(9, 160);
  for (int i = 0; i < 5000; ++i) {
    const std::string key = "k" + std::to_string(i);
    const auto s_before = before.ServerFor(key);
    const auto s_after = after.ServerFor(key);
    if (s_before != s_after) {
      EXPECT_EQ(s_after, 8u) << "key moved between old servers";
    }
  }
}

TEST(DistributorFactoryTest, MakersProduceWorkingInstances) {
  auto modulo = MakeModulo(5);
  auto ketama = MakeKetama(5);
  EXPECT_EQ(modulo->name(), "modulo");
  EXPECT_EQ(ketama->name(), "ketama");
  EXPECT_EQ(modulo->server_count(), 5u);
  EXPECT_EQ(ketama->server_count(), 5u);
  EXPECT_LT(modulo->ServerFor("x"), 5u);
  EXPECT_LT(ketama->ServerFor("x"), 5u);
}

}  // namespace
}  // namespace memfs::hash
