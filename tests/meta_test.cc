// Tests for the token-range-sharded metadata service (src/meta) and its
// MemFS integration: token-range math, record codecs, sharded namespace
// operations end-to-end, paged readdir (including cursor stability across
// membership epochs and bulk-loaded big directories), rename and hard-link
// semantics, agreement with AMFS listings, and a chaos test that crashes
// metadata shards mid-cross-directory-rename and proves recovery leaves no
// dangling dentries or orphaned inodes.
#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "amfs/amfs.h"
#include "common/units.h"
#include "kvstore/kv_cluster.h"
#include "memfs/memfs.h"
#include "meta/client.h"
#include "meta/meta.h"
#include "net/fluid_network.h"
#include "sim/fault.h"
#include "test_util.h"

namespace memfs::meta {
namespace {

using memfs::testing::Await;
using units::KiB;
using units::MiB;
using units::Millis;

// --- Token-range math ----------------------------------------------------

TEST(TokenRangeTest, RangesTileTheTokenSpace) {
  for (std::uint32_t shards : {1u, 2u, 3u, 8u, 64u}) {
    std::uint64_t expected_lo = 0;
    for (std::uint32_t s = 0; s < shards; ++s) {
      const TokenRange range = RangeOfShard(s, shards);
      EXPECT_EQ(range.lo, expected_lo);
      EXPECT_EQ(ShardOfToken(range.lo, shards), s);
      // The last token of the range still belongs to the range.
      const std::uint64_t last =
          (range.hi == 0 ? ~std::uint64_t{0} : range.hi - 1);
      EXPECT_EQ(ShardOfToken(last, shards), s);
      expected_lo = range.hi;
    }
    // The final range wraps to 0, i.e. covers through 2^64 - 1.
    EXPECT_EQ(expected_lo, 0u);
  }
}

TEST(TokenRangeTest, ShardOfTokenAlwaysInBounds) {
  for (std::uint32_t shards : {1u, 3u, 7u, 16u}) {
    for (std::uint64_t token :
         {std::uint64_t{0}, std::uint64_t{1}, ~std::uint64_t{0} / 2,
          ~std::uint64_t{0} - 1, ~std::uint64_t{0}}) {
      EXPECT_LT(ShardOfToken(token, shards), shards);
    }
  }
}

TEST(TokenRangeTest, SplitMergeRoundTrip) {
  const TokenRange whole = RangeOfShard(0, 4);
  TokenRange left, right;
  ASSERT_TRUE(SplitRange(whole, &left, &right));
  EXPECT_EQ(left.lo, whole.lo);
  EXPECT_EQ(left.hi, right.lo);
  EXPECT_EQ(right.hi, whole.hi);

  TokenRange merged;
  ASSERT_TRUE(MergeRanges(left, right, &merged));
  EXPECT_EQ(merged, whole);
  // Order-insensitive merge, but non-adjacent ranges refuse.
  ASSERT_TRUE(MergeRanges(right, left, &merged));
  EXPECT_EQ(merged, whole);
  EXPECT_FALSE(MergeRanges(RangeOfShard(0, 4), RangeOfShard(2, 4), &merged));

  // Width-1 ranges cannot split.
  TokenRange unit{10, 11};
  EXPECT_FALSE(SplitRange(unit, &left, &right));
}

TEST(TokenRangeTest, NameTokensAreDeterministicAndBounded) {
  const hash::HashKind kind = hash::HashKind::kFnv1a64;
  EXPECT_EQ(NameToken(7, "file_3", kind), NameToken(7, "file_3", kind));
  // Sibling directories stripe independently: the ino is in the hash input.
  EXPECT_NE(NameToken(7, "file_3", kind), NameToken(8, "file_3", kind));
  for (std::uint32_t shards : {1u, 2u, 8u}) {
    EXPECT_LT(ShardOfName(7, "file_3", shards, kind), shards);
  }
  EXPECT_EQ(ShardOfName(7, "anything", 1, kind), 0u);
}

// --- Codecs --------------------------------------------------------------

TEST(MetaCodecTest, InodeRoundTrip) {
  InodeRecord rec;
  rec.kind = InodeKind::kDirectory;
  rec.size = 123456789;
  rec.sealed = true;
  rec.epoch = 3;
  rec.nlink = 2;
  auto back = DecodeInode(EncodeInode(rec));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->kind, rec.kind);
  EXPECT_EQ(back->size, rec.size);
  EXPECT_EQ(back->sealed, rec.sealed);
  EXPECT_EQ(back->epoch, rec.epoch);
  EXPECT_EQ(back->nlink, rec.nlink);
  EXPECT_FALSE(DecodeInode(Bytes::Copy("bogus")).ok());
}

TEST(MetaCodecTest, DentryRoundTrip) {
  auto back = DecodeDentry(EncodeDentry({42, InodeKind::kDirectory}));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ino, 42u);
  EXPECT_EQ(back->kind, InodeKind::kDirectory);
  EXPECT_FALSE(DecodeDentry(Bytes::Copy("")).ok());
}

TEST(MetaCodecTest, IntentRoundTrip) {
  RenameIntent intent;
  intent.ino = 99;
  intent.kind = InodeKind::kFile;
  intent.src_parent = 2;
  intent.dst_parent = 3;
  intent.src_name = "old name";
  intent.dst_name = "new";
  auto back = DecodeIntent(EncodeIntent(intent));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, intent);
}

TEST(MetaCodecTest, FoldIndexAppliesEventsInOrder) {
  Bytes blob = IndexHeader();
  blob.Append(IndexEvent("b", false));
  blob.Append(IndexEvent("a", false));
  blob.Append(IndexEvent("a", false));  // duplicate add is idempotent
  blob.Append(IndexEvent("b", true));   // tombstone
  blob.Append(IndexEvent("c", false));
  auto names = FoldIndex(blob);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"a", "c"}));
  EXPECT_FALSE(FoldIndex(Bytes::Copy("not an index")).ok());
}

TEST(MetaCodecTest, KeysAreDisjointNamespaces) {
  EXPECT_EQ(InodeKey(7), "i/7");
  EXPECT_EQ(DentryKey(7, "a"), "d/7/a");
  EXPECT_EQ(IndexKey(7, 3), "x/7.3");
  EXPECT_EQ(IntentKey(7), "r/7");
}

// --- Sharded MemFS end-to-end --------------------------------------------

class MetaFsTest : public ::testing::Test {
 protected:
  // 6-node fabric, storage on the first 4: node 4 stays free for the
  // AddStorageServer epoch-change test.
  static constexpr std::uint32_t kFabricNodes = 6;
  static constexpr std::uint32_t kServers = 4;

  MetaFsTest() {
    fs::MemFsConfig config;
    config.metadata = MetadataMode::kSharded;
    Recreate(config);
  }

  void Recreate(fs::MemFsConfig config) {
    fs_.reset();
    storage_.reset();
    network_.reset();
    sim_ = std::make_unique<sim::Simulation>();
    network_ = std::make_unique<net::FairShareNetwork>(
        *sim_, net::Das4Ipoib(kFabricNodes));
    std::vector<net::NodeId> nodes;
    for (std::uint32_t n = 0; n < kServers; ++n) nodes.push_back(n);
    storage_ = std::make_unique<kv::KvCluster>(*sim_, *network_, nodes);
    fs_ = std::make_unique<fs::MemFs>(*sim_, *network_, *storage_, config);
  }

  Status WriteFile(fs::VfsContext ctx, const std::string& path,
                   const Bytes& data) {
    auto created = Await(*sim_, fs_->Create(ctx, path));
    if (!created.ok()) return created.status();
    if (!data.empty()) {
      Status wrote = Await(*sim_, fs_->Write(ctx, created.value(), data));
      if (!wrote.ok()) return wrote;
    }
    return Await(*sim_, fs_->Close(ctx, created.value()));
  }

  Result<Bytes> ReadFile(fs::VfsContext ctx, const std::string& path) {
    auto opened = Await(*sim_, fs_->Open(ctx, path));
    if (!opened.ok()) return opened.status();
    Bytes out;
    while (true) {
      auto chunk =
          Await(*sim_, fs_->Read(ctx, opened.value(), out.size(), MiB(1)));
      if (!chunk.ok()) return chunk.status();
      if (chunk->empty()) break;
      out.Append(*chunk);
    }
    Status closed = Await(*sim_, fs_->Close(ctx, opened.value()));
    if (!closed.ok()) return closed;
    return out;
  }

  // Drains a listing through the paged interface, recording page sizes.
  Result<std::vector<std::string>> PagedNames(const std::string& dir,
                                              std::uint32_t limit,
                                              std::vector<std::size_t>* pages =
                                                  nullptr) {
    std::vector<std::string> names;
    fs::DirCursor cursor;
    while (true) {
      auto page = Await(*sim_, fs_->ReadDirPage({0, 0}, dir, cursor, limit));
      if (!page.ok()) return page.status();
      if (pages != nullptr) pages->push_back(page->entries.size());
      for (const auto& info : page->entries) names.push_back(info.name);
      if (!page->more) break;
      cursor = page->next;
    }
    return names;
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<net::FairShareNetwork> network_;
  std::unique_ptr<kv::KvCluster> storage_;
  std::unique_ptr<fs::MemFs> fs_;
};

TEST_F(MetaFsTest, WriteReadRoundTrip) {
  const Bytes data = Bytes::Synthetic(MiB(2) + 123, 5);
  ASSERT_TRUE(WriteFile({0, 0}, "/f", data).ok());
  auto back = ReadFile({2, 0}, "/f");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ContentEquals(data));

  auto info = Await(*sim_, fs_->Stat({1, 0}, "/f"));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, data.size());
  EXPECT_FALSE(info->is_directory);
  EXPECT_TRUE(info->sealed);
}

TEST_F(MetaFsTest, NamespaceOperations) {
  ASSERT_TRUE(Await(*sim_, fs_->Mkdir({0, 0}, "/dir")).ok());
  ASSERT_TRUE(Await(*sim_, fs_->Mkdir({0, 0}, "/dir/sub")).ok());
  ASSERT_TRUE(WriteFile({1, 0}, "/dir/b", Bytes::Copy("2")).ok());
  ASSERT_TRUE(WriteFile({2, 0}, "/dir/a", Bytes::Copy("1")).ok());

  // Listings are sorted regardless of creation order.
  auto listing = Await(*sim_, fs_->ReadDir({3, 0}, "/dir"));
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 3u);
  EXPECT_EQ((*listing)[0].name, "a");
  EXPECT_EQ((*listing)[1].name, "b");
  EXPECT_EQ((*listing)[2].name, "sub");

  // Duplicate create/mkdir lose; rmdir refuses non-empty directories.
  EXPECT_EQ(Await(*sim_, fs_->Mkdir({0, 0}, "/dir")).code(),
            ErrorCode::kExists);
  EXPECT_EQ(Await(*sim_, fs_->Create({0, 0}, "/dir/a")).status().code(),
            ErrorCode::kExists);
  EXPECT_EQ(Await(*sim_, fs_->Rmdir({0, 0}, "/dir")).code(),
            ErrorCode::kNotEmpty);

  ASSERT_TRUE(Await(*sim_, fs_->Unlink({0, 0}, "/dir/a")).ok());
  ASSERT_TRUE(Await(*sim_, fs_->Unlink({0, 0}, "/dir/b")).ok());
  ASSERT_TRUE(Await(*sim_, fs_->Rmdir({0, 0}, "/dir/sub")).ok());
  ASSERT_TRUE(Await(*sim_, fs_->Rmdir({0, 0}, "/dir")).ok());
  EXPECT_EQ(Await(*sim_, fs_->Stat({0, 0}, "/dir")).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(MetaFsTest, UnlinkReclaimsStripes) {
  const std::uint64_t size = MiB(2);
  ASSERT_TRUE(WriteFile({0, 0}, "/gone", Bytes::Synthetic(size, 3)).ok());
  const auto used_before = storage_->total_memory_used();
  EXPECT_GE(used_before, size);
  ASSERT_TRUE(Await(*sim_, fs_->Unlink({1, 0}, "/gone")).ok());
  EXPECT_LT(storage_->total_memory_used(), used_before - size + KiB(8));
}

TEST_F(MetaFsTest, PagedReaddirBoundsEveryPage) {
  ASSERT_TRUE(Await(*sim_, fs_->Mkdir({0, 0}, "/d")).ok());
  std::vector<std::string> expected;
  for (int i = 0; i < 40; ++i) {
    const std::string name = "f" + std::to_string(i);
    ASSERT_TRUE(WriteFile({0, 0}, "/d/" + name, Bytes::Copy("x")).ok());
    expected.push_back(name);
  }
  std::sort(expected.begin(), expected.end());

  std::vector<std::size_t> pages;
  auto names = PagedNames("/d", 7, &pages);
  ASSERT_TRUE(names.ok());
  for (std::size_t size : pages) EXPECT_LE(size, 7u);
  EXPECT_GT(pages.size(), 1u);

  // Paged union == full listing == sorted creation set, no duplicates.
  // (Pages arrive in shard-major order; the full listing is globally sorted.)
  std::vector<std::string> sorted = *names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, expected);
  auto full = Await(*sim_, fs_->ReadDir({1, 0}, "/d"));
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->size(), sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ((*full)[i].name, sorted[i]);
  }
}

TEST_F(MetaFsTest, CursorsSurviveMembershipEpochChange) {
  ASSERT_TRUE(Await(*sim_, fs_->Mkdir({0, 0}, "/big")).ok());
  std::set<std::string> expected;
  for (std::uint32_t i = 0; i < 60; ++i) {
    const std::string name = "e" + std::to_string(i);
    ASSERT_TRUE(WriteFile({i % 4, 0}, "/big/" + name, Bytes::Copy("x")).ok());
    expected.insert(name);
  }

  // Consume part of the listing, then change the ring under the cursor.
  std::vector<std::string> names;
  fs::DirCursor cursor;
  for (int page_no = 0; page_no < 4; ++page_no) {
    auto page = Await(*sim_, fs_->ReadDirPage({0, 0}, "/big", cursor, 5));
    ASSERT_TRUE(page.ok());
    for (const auto& info : page->entries) names.push_back(info.name);
    ASSERT_TRUE(page->more);
    cursor = page->next;
  }

  const std::uint32_t epoch = fs_->AddStorageServer(4);
  EXPECT_EQ(epoch, 1u);

  // The saved cursor continues exactly where it left off: shard assignment
  // depends only on the directory, never on the server ring.
  while (true) {
    auto page = Await(*sim_, fs_->ReadDirPage({0, 0}, "/big", cursor, 5));
    ASSERT_TRUE(page.ok());
    for (const auto& info : page->entries) names.push_back(info.name);
    if (!page->more) break;
    cursor = page->next;
  }
  EXPECT_EQ(names.size(), expected.size());
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()), expected);
}

TEST_F(MetaFsTest, BulkLoadedBigDirectoryPagesWithoutMaterializing) {
  constexpr std::uint64_t kEntries = 20000;
  fs::MemFsConfig config;
  config.metadata = MetadataMode::kSharded;
  config.meta.dir_shards = 16;
  Recreate(config);
  fs_->BulkLoadDirectory("/big", "f", kEntries);

  std::vector<std::size_t> pages;
  auto names = PagedNames("/big", 512, &pages);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), kEntries);
  for (std::size_t size : pages) EXPECT_LE(size, 512u);

  // Point operations on bulk-loaded entries behave like created ones.
  auto info = Await(*sim_, fs_->Stat({1, 0}, "/big/f12345"));
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->sealed);
  ASSERT_TRUE(Await(*sim_, fs_->Unlink({2, 0}, "/big/f12345")).ok());
  EXPECT_EQ(Await(*sim_, fs_->Stat({1, 0}, "/big/f12345")).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(MetaFsTest, RenameMovesDentryNotData) {
  const Bytes data = Bytes::Synthetic(MiB(1) + 7, 11);
  ASSERT_TRUE(Await(*sim_, fs_->Mkdir({0, 0}, "/a")).ok());
  ASSERT_TRUE(Await(*sim_, fs_->Mkdir({0, 0}, "/b")).ok());
  ASSERT_TRUE(WriteFile({0, 0}, "/a/x", data).ok());

  ASSERT_TRUE(Await(*sim_, fs_->Rename({1, 0}, "/a/x", "/b/y")).ok());
  EXPECT_EQ(Await(*sim_, fs_->Stat({2, 0}, "/a/x")).status().code(),
            ErrorCode::kNotFound);

  // The data never moved: stripes are keyed by ino, and the read path finds
  // them under the new name.
  auto back = ReadFile({3, 0}, "/b/y");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ContentEquals(data));
  EXPECT_EQ(fs_->meta_client()->stats().renames, 1u);
}

TEST_F(MetaFsTest, RenameDirectoryIsConstantCostDentryMove) {
  ASSERT_TRUE(Await(*sim_, fs_->Mkdir({0, 0}, "/d1")).ok());
  ASSERT_TRUE(WriteFile({0, 0}, "/d1/f", Bytes::Copy("inside")).ok());

  ASSERT_TRUE(Await(*sim_, fs_->Rename({1, 0}, "/d1", "/d2")).ok());
  // Children follow for free — their dentries key on the directory's ino,
  // which did not change.
  auto back = ReadFile({2, 0}, "/d2/f");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ContentEquals(Bytes::Copy("inside")));
  EXPECT_EQ(Await(*sim_, fs_->Stat({2, 0}, "/d1")).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(MetaFsTest, RenameRejectsBadArguments) {
  ASSERT_TRUE(Await(*sim_, fs_->Mkdir({0, 0}, "/a")).ok());
  ASSERT_TRUE(WriteFile({0, 0}, "/a/x", Bytes::Copy("1")).ok());
  ASSERT_TRUE(WriteFile({0, 0}, "/a/y", Bytes::Copy("2")).ok());

  EXPECT_EQ(Await(*sim_, fs_->Rename({0, 0}, "/a/x", "/a/y")).code(),
            ErrorCode::kExists);
  EXPECT_EQ(Await(*sim_, fs_->Rename({0, 0}, "/a", "/a/inside")).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(Await(*sim_, fs_->Rename({0, 0}, "/missing", "/a/z")).code(),
            ErrorCode::kNotFound);
}

TEST_F(MetaFsTest, HardLinksShareTheInode) {
  const Bytes data = Bytes::Synthetic(KiB(700), 21);
  ASSERT_TRUE(WriteFile({0, 0}, "/orig", data).ok());
  ASSERT_TRUE(Await(*sim_, fs_->Link({1, 0}, "/orig", "/alias")).ok());

  auto orig = Await(*sim_, fs_->Stat({2, 0}, "/orig"));
  auto alias = Await(*sim_, fs_->Stat({2, 0}, "/alias"));
  ASSERT_TRUE(orig.ok());
  ASSERT_TRUE(alias.ok());
  EXPECT_EQ(orig->size, alias->size);

  // Dropping one name keeps the data alive through the other.
  const auto used_linked = storage_->total_memory_used();
  ASSERT_TRUE(Await(*sim_, fs_->Unlink({0, 0}, "/orig")).ok());
  EXPECT_GE(storage_->total_memory_used() + KiB(8), used_linked);
  auto back = ReadFile({3, 0}, "/alias");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ContentEquals(data));

  // Dropping the last name reclaims the stripes.
  ASSERT_TRUE(Await(*sim_, fs_->Unlink({0, 0}, "/alias")).ok());
  EXPECT_LT(storage_->total_memory_used(), used_linked - data.size() + KiB(8));
  EXPECT_EQ(fs_->meta_client()->stats().links, 1u);
}

TEST_F(MetaFsTest, AppendLogModeRejectsRenameAndLink) {
  Recreate({});  // default config: metadata = append_log
  ASSERT_TRUE(WriteFile({0, 0}, "/f", Bytes::Copy("1")).ok());
  EXPECT_EQ(Await(*sim_, fs_->Rename({0, 0}, "/f", "/g")).code(),
            ErrorCode::kPermission);
  EXPECT_EQ(Await(*sim_, fs_->Link({0, 0}, "/f", "/g")).code(),
            ErrorCode::kPermission);
  EXPECT_EQ(fs_->meta_client(), nullptr);
}

// --- Cross-FS agreement (the AMFS readdir fix) ---------------------------

// Both file systems must return the identical sorted listing for the same
// namespace, whether drained through ReadDir or through paged cursors.
TEST(CrossFsListingTest, AmfsAndShardedMemFsAgree) {
  const std::vector<std::string> kNames = {"zeta", "alpha", "m1", "m10", "m2",
                                           "beta"};

  auto drive = [&](fs::Vfs& vfs, sim::Simulation& sim) {
    ASSERT_TRUE(Await(sim, vfs.Mkdir({0, 0}, "/dir")).ok());
    for (const auto& name : kNames) {
      auto created = Await(sim, vfs.Create({0, 0}, "/dir/" + name));
      ASSERT_TRUE(created.ok());
      ASSERT_TRUE(
          Await(sim, vfs.Write({0, 0}, created.value(), Bytes::Copy("x")))
              .ok());
      ASSERT_TRUE(Await(sim, vfs.Close({0, 0}, created.value())).ok());
    }
  };
  auto full_names = [&](fs::Vfs& vfs, sim::Simulation& sim) {
    auto listing = Await(sim, vfs.ReadDir({1, 0}, "/dir"));
    std::vector<std::string> names;
    if (listing.ok()) {
      for (const auto& info : *listing) names.push_back(info.name);
    }
    return names;
  };
  auto paged_names = [&](fs::Vfs& vfs, sim::Simulation& sim) {
    std::vector<std::string> names;
    fs::DirCursor cursor;
    while (true) {
      auto page = Await(sim, vfs.ReadDirPage({1, 0}, "/dir", cursor, 2));
      if (!page.ok()) break;
      EXPECT_LE(page->entries.size(), 2u);
      for (const auto& info : page->entries) names.push_back(info.name);
      if (!page->more) break;
      cursor = page->next;
    }
    return names;
  };

  // MemFS, sharded metadata.
  sim::Simulation mem_sim;
  net::FairShareNetwork mem_net(mem_sim, net::Das4Ipoib(4));
  kv::KvCluster mem_storage(mem_sim, mem_net, {0, 1, 2, 3});
  fs::MemFsConfig mem_config;
  mem_config.metadata = MetadataMode::kSharded;
  fs::MemFs memfs(mem_sim, mem_net, mem_storage, mem_config);
  drive(memfs, mem_sim);

  // AMFS.
  sim::Simulation amfs_sim;
  net::FairShareNetwork amfs_net(amfs_sim, net::Das4Ipoib(4));
  amfs::Amfs amfs(amfs_sim, amfs_net, {});
  drive(amfs, amfs_sim);

  std::vector<std::string> sorted = kNames;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(full_names(memfs, mem_sim), sorted);
  EXPECT_EQ(full_names(amfs, amfs_sim), sorted);
  // Paged cursors visit MemFS token-range shards in shard-major order; the
  // union still covers exactly the sorted set. AMFS pages are sorted as-is.
  std::vector<std::string> memfs_paged = paged_names(memfs, mem_sim);
  std::sort(memfs_paged.begin(), memfs_paged.end());
  EXPECT_EQ(memfs_paged, sorted);
  EXPECT_EQ(paged_names(amfs, amfs_sim), sorted);
}

TEST(CrossFsListingTest, AmfsRenameMovesFilesOnly) {
  sim::Simulation sim;
  net::FairShareNetwork network(sim, net::Das4Ipoib(4));
  amfs::Amfs amfs(sim, network, {});

  ASSERT_TRUE(Await(sim, amfs.Mkdir({0, 0}, "/a")).ok());
  ASSERT_TRUE(Await(sim, amfs.Mkdir({0, 0}, "/b")).ok());
  auto created = Await(sim, amfs.Create({0, 0}, "/a/x"));
  ASSERT_TRUE(created.ok());
  const Bytes data = Bytes::Copy("payload");
  ASSERT_TRUE(Await(sim, amfs.Write({0, 0}, created.value(), data)).ok());
  ASSERT_TRUE(Await(sim, amfs.Close({0, 0}, created.value())).ok());

  ASSERT_TRUE(Await(sim, amfs.Rename({1, 0}, "/a/x", "/b/y")).ok());
  EXPECT_EQ(Await(sim, amfs.Stat({2, 0}, "/a/x")).status().code(),
            ErrorCode::kNotFound);
  auto opened = Await(sim, amfs.Open({2, 0}, "/b/y"));
  ASSERT_TRUE(opened.ok());
  auto back = Await(sim, amfs.Read({2, 0}, opened.value(), 0, KiB(1)));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ContentEquals(data));

  // Path-keyed design: directory renames and hard links are refused.
  EXPECT_EQ(Await(sim, amfs.Rename({0, 0}, "/a", "/c")).code(),
            ErrorCode::kPermission);
  EXPECT_EQ(Await(sim, amfs.Link({0, 0}, "/b/y", "/b/z")).code(),
            ErrorCode::kPermission);
}

// --- Chaos: shard crashes mid-cross-directory-rename ---------------------

sim::Task RunChaosRename(sim::Simulation& sim, fs::Vfs& vfs,
                         sim::SimTime start, std::uint32_t node,
                         std::string from, std::string to, std::uint8_t& ok) {
  co_await sim.Delay(start);
  ok = (co_await vfs.Rename({node, 0}, std::move(from), std::move(to))).ok();
}

TEST(MetaChaosTest, CrossDirRenameSurvivesShardCrash) {
  constexpr std::uint32_t kNodes = 6;
  constexpr std::uint32_t kFiles = 12;

  sim::Simulation sim;
  net::FairShareNetwork network(sim, net::Das4Ipoib(kNodes));
  kv::KvClientPolicy policy;
  policy.retry.max_attempts = 4;
  policy.op_deadline = Millis(20);
  std::vector<net::NodeId> nodes;
  for (std::uint32_t n = 0; n < kNodes; ++n) nodes.push_back(n);
  kv::KvCluster storage(sim, network, std::move(nodes), kv::KvServerConfig{},
                        kv::KvOpCostModel{}, nullptr, policy);
  fs::MemFsConfig config;
  config.metadata = MetadataMode::kSharded;
  config.replication = 3;
  fs::MemFs memfs(sim, network, storage, config);

  // Build the namespace on a healthy cluster.
  ASSERT_TRUE(Await(sim, memfs.Mkdir({0, 0}, "/src")).ok());
  ASSERT_TRUE(Await(sim, memfs.Mkdir({0, 0}, "/dst")).ok());
  for (std::uint32_t i = 0; i < kFiles; ++i) {
    auto created =
        Await(sim, memfs.Create({i % kNodes, 0}, "/src/f" + std::to_string(i)));
    ASSERT_TRUE(created.ok()) << static_cast<int>(created.status().code())
                              << " " << created.status().message();
    ASSERT_TRUE(Await(sim, memfs.Write({i % kNodes, 0}, created.value(),
                                       Bytes::Synthetic(KiB(64), 100 + i)))
                    .ok());
    ASSERT_TRUE(Await(sim, memfs.Close({i % kNodes, 0}, created.value())).ok());
  }

  // Crash three consecutive servers across the rename window — replica
  // chains are consecutive on the ring, so some keys lose their whole chain
  // and renames die mid-protocol, leaving intents behind. The servers come
  // back with RAM intact (process restart), and recovery rolls forward.
  sim::FaultHooks hooks;
  hooks.set_server_down = [&storage](std::uint32_t server, bool down,
                                     bool wipe) {
    storage.SetServerDown(server, down, wipe);
  };
  hooks.set_server_slowdown = [&storage](std::uint32_t server, double factor) {
    storage.SetServerSlowdown(server, factor);
  };
  sim::FaultInjector injector(sim, std::move(hooks));
  // The namespace build above already advanced the clock; fault windows are
  // scheduled relative to now so they overlap the rename traffic below.
  const sim::SimTime t0 = sim.now();
  std::vector<sim::FaultEvent> faults;
  for (std::uint32_t victim : {1u, 2u, 3u}) {
    sim::FaultEvent crash;
    crash.kind = sim::FaultKind::kServerCrash;
    crash.server = victim;
    crash.start = t0 + Millis(2);
    crash.duration = Millis(30);
    faults.push_back(crash);
  }
  injector.ScheduleAll(faults);

  // Cross-directory renames staggered straight through the crash windows.
  std::vector<std::uint8_t> rename_ok(kFiles, 0);
  for (std::uint32_t i = 0; i < kFiles; ++i) {
    RunChaosRename(sim, memfs, Millis(2) * i, i % kNodes,
                   "/src/f" + std::to_string(i), "/dst/g" + std::to_string(i),
                   rename_ok[i]);
  }
  sim.Run();

  // Heal: roll every surviving intent forward until none are pending.
  Client* client = memfs.meta_client();
  ASSERT_NE(client, nullptr);
  for (int round = 0; round < 10 && client->pending_intents() > 0; ++round) {
    auto recovered = Await(sim, client->RecoverPending(0, {}));
    ASSERT_TRUE(recovered.ok());
  }
  EXPECT_EQ(client->pending_intents(), 0u);

  // Invariant scan over the union of all replicas: every dentry points at a
  // live inode (no dangling dentries) and every inode is reachable from a
  // dentry (no orphans).
  std::map<std::string, Bytes> merged;
  for (std::uint32_t s = 0; s < storage.server_count(); ++s) {
    kv::KvServer& server = storage.server(s);
    for (const auto& key : server.Keys()) {
      auto value = server.Get(key);
      ASSERT_TRUE(value.ok());
      merged.emplace(key, std::move(value.value()));
    }
  }
  std::set<Ino> inodes;
  std::set<Ino> referenced{kRootIno};
  for (const auto& [key, value] : merged) {
    if (key.rfind("i/", 0) == 0) {
      inodes.insert(std::stoull(key.substr(2)));
    } else if (key.rfind("d/", 0) == 0) {
      auto dentry = DecodeDentry(value);
      ASSERT_TRUE(dentry.ok()) << key;
      EXPECT_TRUE(merged.contains(InodeKey(dentry->ino)))
          << "dangling dentry " << key << " -> ino " << dentry->ino;
      referenced.insert(dentry->ino);
    }
  }
  for (const Ino ino : inodes) {
    EXPECT_TRUE(referenced.contains(ino)) << "orphaned inode " << ino;
  }
  EXPECT_FALSE(merged.contains(IntentKey(0)));
  for (const auto& [key, value] : merged) {
    EXPECT_NE(key.rfind("r/", 0), 0u) << "leftover intent " << key;
  }

  // Exactly one name per file survives, and an acknowledged or recovered
  // rename means the destination name.
  for (std::uint32_t i = 0; i < kFiles; ++i) {
    const bool src_ok =
        Await(sim, memfs.Stat({0, 0}, "/src/f" + std::to_string(i))).ok();
    const bool dst_ok =
        Await(sim, memfs.Stat({0, 0}, "/dst/g" + std::to_string(i))).ok();
    EXPECT_NE(src_ok, dst_ok) << "file " << i;
    if (rename_ok[i]) {
      EXPECT_TRUE(dst_ok) << "file " << i;
    }
    // The data reads back intact under whichever name survived.
    const std::string path = dst_ok ? "/dst/g" + std::to_string(i)
                                    : "/src/f" + std::to_string(i);
    auto opened = Await(sim, memfs.Open({1, 0}, path));
    ASSERT_TRUE(opened.ok()) << path;
    auto back = Await(sim, memfs.Read({1, 0}, opened.value(), 0, KiB(64)));
    ASSERT_TRUE(back.ok()) << path;
    EXPECT_TRUE(back->ContentEquals(Bytes::Synthetic(KiB(64), 100 + i)));
    ASSERT_TRUE(Await(sim, memfs.Close({1, 0}, opened.value())).ok());
  }
  EXPECT_GT(injector.stats().crashes, 0u);
  // The crashes really interfered: with this deterministic schedule several
  // renames die mid-protocol and recovery does the roll-forward.
  EXPECT_GT(std::count(rename_ok.begin(), rename_ok.end(), 0), 0);
}

}  // namespace
}  // namespace memfs::meta
