// AMFS baseline tests: local-only writes, replication-on-read, remote-fetch
// cost, multicast, skewed metadata, capacity failures, namespace operations.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "amfs/amfs.h"
#include "common/units.h"
#include "hash/hash.h"
#include "net/fluid_network.h"
#include "test_util.h"

namespace memfs::amfs {
namespace {

using fs::VfsContext;
using memfs::testing::Await;
using units::KiB;
using units::MiB;

class AmfsTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kNodes = 4;

  AmfsTest() { Recreate({}); }

  void Recreate(AmfsConfig config) {
    fs_.reset();
    network_.reset();
    sim_ = std::make_unique<sim::Simulation>();
    network_ = std::make_unique<net::FairShareNetwork>(
        *sim_, net::Das4Ipoib(kNodes));
    fs_ = std::make_unique<Amfs>(*sim_, *network_, config);
  }

  Status WriteFile(VfsContext ctx, const std::string& path,
                   const Bytes& data) {
    auto created = Await(*sim_, fs_->Create(ctx, path));
    if (!created.ok()) return created.status();
    Status s = Await(*sim_, fs_->Write(ctx, created.value(), data));
    if (!s.ok()) return s;
    return Await(*sim_, fs_->Close(ctx, created.value()));
  }

  Result<Bytes> ReadFile(VfsContext ctx, const std::string& path) {
    auto opened = Await(*sim_, fs_->Open(ctx, path));
    if (!opened.ok()) return opened.status();
    auto data = Await(*sim_, fs_->Read(ctx, opened.value(), 0, MiB(256)));
    Status closed = Await(*sim_, fs_->Close(ctx, opened.value()));
    if (!data.ok()) return data.status();
    if (!closed.ok()) return closed;
    return data;
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<net::FairShareNetwork> network_;
  std::unique_ptr<Amfs> fs_;
};

TEST_F(AmfsTest, RoundTripLocal) {
  const Bytes data = Bytes::Pattern(1000, 3);
  ASSERT_TRUE(WriteFile({2, 0}, "/f", data).ok());
  auto back = ReadFile({2, 0}, "/f");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ContentEquals(data));
}

TEST_F(AmfsTest, WritesLandOnWriterNode) {
  ASSERT_TRUE(WriteFile({1, 0}, "/local", Bytes::Synthetic(MiB(4), 1)).ok());
  EXPECT_EQ(fs_->node_memory_used(1), MiB(4));
  EXPECT_EQ(fs_->node_memory_used(0), 0u);
  EXPECT_EQ(fs_->OwnerHint("/local"), 1u);
  EXPECT_TRUE(fs_->HasReplica(1, "/local"));
  EXPECT_FALSE(fs_->HasReplica(0, "/local"));
}

TEST_F(AmfsTest, RemoteOpenReplicates) {
  ASSERT_TRUE(WriteFile({0, 0}, "/r", Bytes::Synthetic(MiB(2), 2)).ok());
  auto back = ReadFile({3, 0}, "/r");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), MiB(2));
  // Replication-on-read: the reader now holds a full copy.
  EXPECT_TRUE(fs_->HasReplica(3, "/r"));
  EXPECT_EQ(fs_->node_memory_used(3), MiB(2));
  // Aggregate memory doubled — the paper's Fig. 9 effect.
  EXPECT_EQ(fs_->total_memory_used(), MiB(4));
}

TEST_F(AmfsTest, RemoteReadSlowerThanLocal) {
  ASSERT_TRUE(WriteFile({0, 0}, "/a", Bytes::Synthetic(MiB(4), 1)).ok());
  ASSERT_TRUE(WriteFile({1, 0}, "/b", Bytes::Synthetic(MiB(4), 2)).ok());

  auto t0 = sim_->now();
  ASSERT_TRUE(ReadFile({0, 0}, "/a").ok());  // local
  const auto local_time = sim_->now() - t0;

  t0 = sim_->now();
  ASSERT_TRUE(ReadFile({0, 0}, "/b").ok());  // remote fetch + replicate
  const auto remote_time = sim_->now() - t0;

  // The chunked fetch protocol makes remote reads several times slower
  // (Table 1 shows ~4x on IPoIB).
  EXPECT_GT(remote_time, local_time * 3);
}

TEST_F(AmfsTest, SecondRemoteReadIsLocal) {
  ASSERT_TRUE(WriteFile({0, 0}, "/c", Bytes::Synthetic(MiB(2), 1)).ok());
  ASSERT_TRUE(ReadFile({2, 0}, "/c").ok());  // replicates
  const auto t0 = sim_->now();
  ASSERT_TRUE(ReadFile({2, 0}, "/c").ok());  // now local
  const auto second = sim_->now() - t0;
  EXPECT_LT(second, units::Millis(20));
}

TEST_F(AmfsTest, MulticastReplicatesEverywhere) {
  ASSERT_TRUE(WriteFile({1, 0}, "/m", Bytes::Synthetic(MiB(1), 5)).ok());
  Status status = Await(*sim_, fs_->Multicast({1, 0}, "/m"));
  ASSERT_TRUE(status.ok());
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    EXPECT_TRUE(fs_->HasReplica(n, "/m")) << n;
  }
  EXPECT_EQ(fs_->total_memory_used(), MiB(4));
}

TEST_F(AmfsTest, MulticastOfMissingFileFails) {
  EXPECT_FALSE(Await(*sim_, fs_->Multicast({0, 0}, "/ghost")).ok());
}

TEST_F(AmfsTest, CapacityExceededOnWrite) {
  AmfsConfig config;
  config.node_memory_limit = MiB(4);
  Recreate(config);
  EXPECT_TRUE(WriteFile({0, 0}, "/fit", Bytes::Synthetic(MiB(3), 1)).ok());
  // The next whole file no longer fits in the writer's node memory: this is
  // what crashes AMFS on Montage 12x12.
  EXPECT_EQ(WriteFile({0, 0}, "/burst", Bytes::Synthetic(MiB(2), 2)).code(),
            ErrorCode::kNoSpace);
  // Other nodes are unaffected.
  EXPECT_TRUE(WriteFile({1, 0}, "/burst", Bytes::Synthetic(MiB(2), 2)).ok());
}

TEST_F(AmfsTest, CapacityExceededOnReplication) {
  AmfsConfig config;
  config.node_memory_limit = MiB(4);
  Recreate(config);
  ASSERT_TRUE(WriteFile({0, 0}, "/big0", Bytes::Synthetic(MiB(3), 1)).ok());
  ASSERT_TRUE(WriteFile({1, 0}, "/big1", Bytes::Synthetic(MiB(3), 2)).ok());
  // Node 1 cannot hold a replica of /big0 on top of its own file.
  EXPECT_EQ(ReadFile({1, 0}, "/big0").status().code(), ErrorCode::kNoSpace);
}

TEST_F(AmfsTest, WriteOnceSemantics) {
  ASSERT_TRUE(WriteFile({0, 0}, "/w", Bytes::Copy("v")).ok());
  EXPECT_EQ(Await(*sim_, fs_->Create({1, 0}, "/w")).status().code(),
            ErrorCode::kExists);
  auto created = Await(*sim_, fs_->Create({0, 0}, "/pending"));
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(Await(*sim_, fs_->Open({1, 0}, "/pending")).status().code(),
            ErrorCode::kPermission);
  (void)Await(*sim_, fs_->Close({0, 0}, created.value()));
}

TEST_F(AmfsTest, NamespaceOperations) {
  ASSERT_TRUE(Await(*sim_, fs_->Mkdir({0, 0}, "/d")).ok());
  ASSERT_TRUE(WriteFile({1, 0}, "/d/x", Bytes::Copy("1")).ok());
  ASSERT_TRUE(WriteFile({2, 0}, "/d/y", Bytes::Copy("2")).ok());

  auto listing = Await(*sim_, fs_->ReadDir({3, 0}, "/d"));
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 2u);

  auto info = Await(*sim_, fs_->Stat({0, 0}, "/d/x"));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, 1u);

  ASSERT_TRUE(Await(*sim_, fs_->Unlink({0, 0}, "/d/x")).ok());
  listing = Await(*sim_, fs_->ReadDir({3, 0}, "/d"));
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 1u);
  EXPECT_EQ(Await(*sim_, fs_->Open({0, 0}, "/d/x")).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(AmfsTest, RmdirSemantics) {
  ASSERT_TRUE(Await(*sim_, fs_->Mkdir({0, 0}, "/dd")).ok());
  ASSERT_TRUE(WriteFile({1, 0}, "/dd/x", Bytes::Copy("1")).ok());
  EXPECT_EQ(Await(*sim_, fs_->Rmdir({2, 0}, "/dd")).code(),
            ErrorCode::kNotEmpty);
  ASSERT_TRUE(Await(*sim_, fs_->Unlink({0, 0}, "/dd/x")).ok());
  ASSERT_TRUE(Await(*sim_, fs_->Rmdir({2, 0}, "/dd")).ok());
  EXPECT_EQ(Await(*sim_, fs_->Stat({0, 0}, "/dd")).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(AmfsTest, UnlinkRemovesReplicasEverywhere) {
  ASSERT_TRUE(WriteFile({0, 0}, "/rep", Bytes::Synthetic(MiB(1), 1)).ok());
  ASSERT_TRUE(Await(*sim_, fs_->Multicast({0, 0}, "/rep")).ok());
  EXPECT_EQ(fs_->total_memory_used(), MiB(4));
  ASSERT_TRUE(Await(*sim_, fs_->Unlink({2, 0}, "/rep")).ok());
  EXPECT_EQ(fs_->total_memory_used(), 0u);
}

TEST_F(AmfsTest, SkewedMetadataClustersSimilarNames) {
  // Workload-style names differing in digits land on few metadata nodes
  // under the skewed placement — the non-uniformity behind AMFS create's
  // sublinear scaling (Fig. 6).
  AmfsConfig skewed;
  skewed.skewed_metadata = true;
  Recreate(skewed);
  ASSERT_TRUE(Await(*sim_, fs_->Mkdir({0, 0}, "/proj")).ok());
  std::vector<int> load_skewed(kNodes, 0);
  for (int i = 0; i < 64; ++i) {
    std::string name = "/proj/p_" + std::to_string(1000 + i) + ".fits";
    ASSERT_TRUE(WriteFile({static_cast<net::NodeId>(i % kNodes), 0}, name,
                          Bytes::Copy("x"))
                    .ok());
  }
  // Reconstruct the placement with the same rule the FS uses.
  auto meta_node = [&](const std::string& p) {
    std::uint64_t sum = 0;
    for (unsigned char c : p) sum += c;
    return sum % kNodes;
  };
  for (int i = 0; i < 64; ++i) {
    ++load_skewed[meta_node("/proj/p_" + std::to_string(1000 + i) + ".fits")];
  }
  int max_load = *std::max_element(load_skewed.begin(), load_skewed.end());
  EXPECT_GT(max_load, 64 / static_cast<int>(kNodes));
}

TEST_F(AmfsTest, OwnerHintUnknownFile) {
  EXPECT_EQ(fs_->OwnerHint("/never"), kNodes);
}

TEST_F(AmfsTest, LocalWriteTouchesNoNetwork) {
  // A node whose metadata happens to be homed locally writes with zero
  // remote traffic. Find such a path by probing OwnerHint's rule.
  AmfsConfig config;
  config.skewed_metadata = false;
  Recreate(config);
  // Find a path whose metadata home is node 0 (so a node-0 writer stays
  // fully local) — brute force a few candidates.
  std::string path;
  for (int i = 0; i < 256; ++i) {
    std::string candidate = "/p" + std::to_string(i);
    const std::uint64_t h = hash::Fnv1a64(candidate);
    std::string parent_ok = "/";  // root's home may be any node; accept it
    if (h % kNodes == 0) {
      path = candidate;
      break;
    }
  }
  ASSERT_FALSE(path.empty());
  const auto sent_before = network_->bytes_sent(0);
  ASSERT_TRUE(WriteFile({0, 0}, path, Bytes::Synthetic(MiB(8), 1)).ok());
  // Only metadata messages may have left node 0 (root-dir link), no data.
  EXPECT_LT(network_->bytes_sent(0) - sent_before, 1024u);
}

}  // namespace
}  // namespace memfs::amfs
