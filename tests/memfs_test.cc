// MemFS client tests: striping arithmetic, metadata codec, write/read round
// trips over the simulated cluster, write-once enforcement, buffering and
// prefetching behaviour, namespace operations, and stripe balance.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "common/units.h"
#include "kvstore/kv_cluster.h"
#include "memfs/memfs.h"
#include "memfs/metadata.h"
#include "memfs/striper.h"
#include "net/fluid_network.h"
#include "test_util.h"

namespace memfs::fs {
namespace {

using memfs::testing::Await;
using units::KiB;
using units::MiB;

// --- Path helpers ---

TEST(PathTest, ParentAndBasename) {
  EXPECT_EQ(path::Parent("/a/b/c"), "/a/b");
  EXPECT_EQ(path::Parent("/a"), "/");
  EXPECT_EQ(path::Basename("/a/b/c"), "c");
  EXPECT_EQ(path::Basename("/a"), "a");
}

TEST(PathTest, Normalization) {
  EXPECT_TRUE(path::IsNormalized("/"));
  EXPECT_TRUE(path::IsNormalized("/a/b.txt"));
  EXPECT_FALSE(path::IsNormalized(""));
  EXPECT_FALSE(path::IsNormalized("a/b"));
  EXPECT_FALSE(path::IsNormalized("/a/"));
  EXPECT_FALSE(path::IsNormalized("/a//b"));
  EXPECT_FALSE(path::IsNormalized("/a/../b"));
  EXPECT_FALSE(path::IsNormalized("/a/./b"));
}

// --- Striper ---

TEST(StriperTest, StripeCount) {
  Striper striper(KiB(512));
  EXPECT_EQ(striper.StripeCount(0), 0u);
  EXPECT_EQ(striper.StripeCount(1), 1u);
  EXPECT_EQ(striper.StripeCount(KiB(512)), 1u);
  EXPECT_EQ(striper.StripeCount(KiB(512) + 1), 2u);
  EXPECT_EQ(striper.StripeCount(MiB(1)), 2u);
}

TEST(StriperTest, StripeLength) {
  Striper striper(KiB(512));
  EXPECT_EQ(striper.StripeLength(0, MiB(1)), KiB(512));
  EXPECT_EQ(striper.StripeLength(1, KiB(512) + 100), 100u);
  EXPECT_EQ(striper.StripeLength(5, KiB(512)), 0u);
}

TEST(StriperTest, SpansCoverRequestExactly) {
  Striper striper(1000);
  const auto spans = striper.Spans(2500, 1200, 10000);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].stripe, 2u);
  EXPECT_EQ(spans[0].offset_in_stripe, 500u);
  EXPECT_EQ(spans[0].length, 500u);
  EXPECT_EQ(spans[0].offset_in_request, 0u);
  EXPECT_EQ(spans[1].stripe, 3u);
  EXPECT_EQ(spans[1].offset_in_stripe, 0u);
  EXPECT_EQ(spans[1].length, 700u);
  EXPECT_EQ(spans[1].offset_in_request, 500u);
}

TEST(StriperTest, SpansClampAtEof) {
  Striper striper(1000);
  const auto spans = striper.Spans(9500, 5000, 10000);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].length, 500u);
  EXPECT_TRUE(striper.Spans(10000, 10, 10000).empty());
  EXPECT_TRUE(striper.Spans(0, 10, 0).empty());
}

TEST(StriperTest, SpansPropertySweep) {
  // Property: spans tile [offset, min(offset+length, size)) without gaps.
  Striper striper(512);
  const std::uint64_t file_size = 5000;
  for (std::uint64_t offset : {0ull, 1ull, 511ull, 512ull, 513ull, 4999ull}) {
    for (std::uint64_t length : {0ull, 1ull, 512ull, 1000ull, 6000ull}) {
      const auto spans = striper.Spans(offset, length, file_size);
      std::uint64_t pos = offset;
      std::uint64_t covered = 0;
      for (const auto& span : spans) {
        EXPECT_EQ(span.stripe, pos / 512);
        EXPECT_EQ(span.offset_in_stripe, pos % 512);
        EXPECT_EQ(span.offset_in_request, pos - offset);
        EXPECT_GT(span.length, 0u);
        pos += span.length;
        covered += span.length;
      }
      EXPECT_EQ(covered, std::min(offset + length, file_size) -
                             std::min(offset, file_size));
    }
  }
}

TEST(StriperTest, StripeKeyFormat) {
  EXPECT_EQ(Striper::StripeKey("/a/b.fits", 17), "/a/b.fits#17");
}

// --- Metadata codec ---

TEST(MetadataTest, FileRecordRoundTrip) {
  auto decoded = meta::Decode(meta::EncodeFile({123456, true}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, meta::Kind::kFile);
  EXPECT_EQ(decoded->file.size, 123456u);
  EXPECT_TRUE(decoded->file.sealed);

  decoded = meta::Decode(meta::EncodeFile({0, false}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->file.sealed);
}

TEST(MetadataTest, DirectoryEventLogFolds) {
  Bytes dir = meta::DirHeader();
  dir.Append(meta::DirEvent("a", false));
  dir.Append(meta::DirEvent("b", false));
  dir.Append(meta::DirEvent("a", true));   // delete a
  dir.Append(meta::DirEvent("c", false));
  auto decoded = meta::Decode(dir);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, meta::Kind::kDirectory);
  EXPECT_EQ(decoded->entries, (std::vector<std::string>{"b", "c"}));
}

TEST(MetadataTest, RecreatedNameReappears) {
  Bytes dir = meta::DirHeader();
  dir.Append(meta::DirEvent("x", false));
  dir.Append(meta::DirEvent("x", true));
  dir.Append(meta::DirEvent("x", false));
  auto decoded = meta::Decode(dir);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->entries, (std::vector<std::string>{"x"}));
}

TEST(MetadataTest, MalformedRecordsRejected) {
  EXPECT_FALSE(meta::Decode(Bytes::Copy("")).ok());
  EXPECT_FALSE(meta::Decode(Bytes::Copy("Z nonsense")).ok());
  EXPECT_FALSE(meta::Decode(Bytes::Copy("F")).ok());
  EXPECT_FALSE(meta::Decode(Bytes::Copy("F abc 1\n")).ok());
  EXPECT_FALSE(meta::Decode(Bytes::Synthetic(100, 1)).ok());
}

// --- MemFS over the simulated cluster ---

class MemFsTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kNodes = 4;

  MemFsTest() { Recreate({}); }

  void Recreate(MemFsConfig config) {
    fs_.reset();
    storage_.reset();
    network_.reset();
    sim_ = std::make_unique<sim::Simulation>();
    network_ = std::make_unique<net::FairShareNetwork>(
        *sim_, net::Das4Ipoib(kNodes));
    std::vector<net::NodeId> nodes;
    for (std::uint32_t n = 0; n < kNodes; ++n) nodes.push_back(n);
    storage_ = std::make_unique<kv::KvCluster>(*sim_, *network_, nodes);
    fs_ = std::make_unique<MemFs>(*sim_, *network_, *storage_, config);
  }

  // Writes `size` pattern bytes to `path` from `ctx` in `block`-sized calls.
  Status WriteFile(VfsContext ctx, const std::string& path, const Bytes& data,
                   std::uint64_t block) {
    auto created = Await(*sim_, fs_->Create(ctx, path));
    if (!created.ok()) return created.status();
    std::uint64_t offset = 0;
    while (offset < data.size()) {
      const std::uint64_t len = std::min<std::uint64_t>(
          block, data.size() - offset);
      Status s =
          Await(*sim_, fs_->Write(ctx, created.value(),
                                  data.Slice(offset, len)));
      if (!s.ok()) return s;
      offset += len;
    }
    return Await(*sim_, fs_->Close(ctx, created.value()));
  }

  Result<Bytes> ReadFile(VfsContext ctx, const std::string& path,
                         std::uint64_t block) {
    auto opened = Await(*sim_, fs_->Open(ctx, path));
    if (!opened.ok()) return opened.status();
    Bytes out;
    std::uint64_t offset = 0;
    while (true) {
      auto chunk =
          Await(*sim_, fs_->Read(ctx, opened.value(), offset, block));
      if (!chunk.ok()) return chunk.status();
      if (chunk->empty()) break;
      offset += chunk->size();
      out.Append(*chunk);
      if (chunk->size() < block) break;
    }
    Status closed = Await(*sim_, fs_->Close(ctx, opened.value()));
    if (!closed.ok()) return closed;
    return out;
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<net::FairShareNetwork> network_;
  std::unique_ptr<kv::KvCluster> storage_;
  std::unique_ptr<MemFs> fs_;
};

TEST_F(MemFsTest, SmallFileRoundTrip) {
  const Bytes data = Bytes::Pattern(100, 42);
  ASSERT_TRUE(WriteFile({0, 0}, "/hello", data, 100).ok());
  auto back = ReadFile({1, 0}, "/hello", 100);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ContentEquals(data));
  EXPECT_EQ(back->view(), data.view());
}

TEST_F(MemFsTest, EmptyFileRoundTrip) {
  ASSERT_TRUE(WriteFile({0, 0}, "/empty", Bytes(), 100).ok());
  auto back = ReadFile({2, 0}, "/empty", 100);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
  auto info = Await(*sim_, fs_->Stat({1, 0}, "/empty"));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, 0u);
  EXPECT_TRUE(info->sealed);
}

TEST_F(MemFsTest, MultiStripeFileRoundTrip) {
  // 3.5 stripes, read back in odd-sized blocks from another node.
  const std::uint64_t size = KiB(512) * 3 + KiB(256);
  const Bytes data = Bytes::Synthetic(size, 7);
  ASSERT_TRUE(WriteFile({0, 0}, "/big", data, KiB(300)).ok());
  auto back = ReadFile({3, 0}, "/big", KiB(123));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), size);
  EXPECT_TRUE(back->ContentEquals(data));
}

TEST_F(MemFsTest, StripesLandOnMultipleServers) {
  const std::uint64_t size = KiB(512) * 8;
  ASSERT_TRUE(
      WriteFile({0, 0}, "/spread", Bytes::Synthetic(size, 1), MiB(1)).ok());
  int servers_with_data = 0;
  for (std::uint32_t s = 0; s < kNodes; ++s) {
    if (storage_->server(s).memory_used() > 0) ++servers_with_data;
  }
  EXPECT_GE(servers_with_data, 3);
}

TEST_F(MemFsTest, StripeDistributionIsBalanced) {
  // Many files: per-server bytes should be close to uniform (the symmetric
  // distribution claim, Fig. 9's flat curve).
  for (int f = 0; f < 32; ++f) {
    ASSERT_TRUE(WriteFile({static_cast<net::NodeId>(f % kNodes), 0},
                          "/bal_" + std::to_string(f),
                          Bytes::Synthetic(MiB(2), f), MiB(2))
                    .ok());
  }
  RunningStats stats;
  for (std::uint32_t s = 0; s < kNodes; ++s) {
    stats.Add(static_cast<double>(storage_->server(s).memory_used()));
  }
  EXPECT_LT(stats.cv(), 0.15);
}

TEST_F(MemFsTest, RandomOffsetReads) {
  const std::uint64_t size = MiB(2);
  const Bytes data = Bytes::Synthetic(size, 99);
  ASSERT_TRUE(WriteFile({0, 0}, "/rand", data, MiB(2)).ok());
  auto opened = Await(*sim_, fs_->Open({1, 0}, "/rand"));
  ASSERT_TRUE(opened.ok());
  // POSIX-style reads at arbitrary offsets (reading is not restricted).
  for (std::uint64_t offset :
       {0ull, 1ull, 524287ull, 524288ull, 1048576ull, 2097151ull}) {
    auto chunk =
        Await(*sim_, fs_->Read({1, 0}, opened.value(), offset, 1000));
    ASSERT_TRUE(chunk.ok()) << offset;
    EXPECT_TRUE(chunk->ContentEquals(
        data.Slice(offset, std::min<std::uint64_t>(1000, size - offset))));
  }
  // Reads past EOF return empty.
  auto eof = Await(*sim_, fs_->Read({1, 0}, opened.value(), size + 10, 100));
  ASSERT_TRUE(eof.ok());
  EXPECT_TRUE(eof->empty());
  (void)Await(*sim_, fs_->Close({1, 0}, opened.value()));
}

TEST_F(MemFsTest, CreateExistingFails) {
  ASSERT_TRUE(WriteFile({0, 0}, "/dup", Bytes::Copy("x"), 10).ok());
  auto again = Await(*sim_, fs_->Create({1, 0}, "/dup"));
  EXPECT_EQ(again.status().code(), ErrorCode::kExists);
}

TEST_F(MemFsTest, WriteOnceEnforced) {
  // A sealed file cannot be re-created (write-once), and read handles reject
  // writes.
  ASSERT_TRUE(WriteFile({0, 0}, "/once", Bytes::Copy("data"), 10).ok());
  EXPECT_EQ(Await(*sim_, fs_->Create({0, 0}, "/once")).status().code(),
            ErrorCode::kExists);
  auto opened = Await(*sim_, fs_->Open({0, 0}, "/once"));
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(
      Await(*sim_, fs_->Write({0, 0}, opened.value(), Bytes::Copy("x")))
          .code(),
      ErrorCode::kPermission);
  (void)Await(*sim_, fs_->Close({0, 0}, opened.value()));
}

TEST_F(MemFsTest, UnsealedFileNotReadable) {
  auto created = Await(*sim_, fs_->Create({0, 0}, "/wip"));
  ASSERT_TRUE(created.ok());
  // Another process cannot open it until close() seals it.
  EXPECT_EQ(Await(*sim_, fs_->Open({1, 0}, "/wip")).status().code(),
            ErrorCode::kPermission);
  (void)Await(*sim_, fs_->Write({0, 0}, created.value(), Bytes::Copy("x")));
  ASSERT_TRUE(Await(*sim_, fs_->Close({0, 0}, created.value())).ok());
  EXPECT_TRUE(Await(*sim_, fs_->Open({1, 0}, "/wip")).ok());
}

TEST_F(MemFsTest, ReadsOnWriteHandleRejected) {
  auto created = Await(*sim_, fs_->Create({0, 0}, "/w"));
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(Await(*sim_, fs_->Read({0, 0}, created.value(), 0, 10))
                .status()
                .code(),
            ErrorCode::kPermission);
  (void)Await(*sim_, fs_->Close({0, 0}, created.value()));
}

TEST_F(MemFsTest, BadHandleRejected) {
  EXPECT_EQ(Await(*sim_, fs_->Read({0, 0}, 999, 0, 10)).status().code(),
            ErrorCode::kBadHandle);
  EXPECT_EQ(Await(*sim_, fs_->Close({0, 0}, 999)).code(),
            ErrorCode::kBadHandle);
}

TEST_F(MemFsTest, OpenMissingFileFails) {
  EXPECT_EQ(Await(*sim_, fs_->Open({0, 0}, "/nothing")).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(MemFsTest, CreateInMissingDirectoryFails) {
  EXPECT_EQ(
      Await(*sim_, fs_->Create({0, 0}, "/no/such/dir/file")).status().code(),
      ErrorCode::kNotFound);
}

TEST_F(MemFsTest, MkdirReaddirUnlink) {
  ASSERT_TRUE(Await(*sim_, fs_->Mkdir({0, 0}, "/dir")).ok());
  ASSERT_TRUE(WriteFile({1, 0}, "/dir/a", Bytes::Copy("1"), 10).ok());
  ASSERT_TRUE(WriteFile({2, 0}, "/dir/b", Bytes::Copy("2"), 10).ok());

  auto listing = Await(*sim_, fs_->ReadDir({3, 0}, "/dir"));
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 2u);
  EXPECT_EQ((*listing)[0].name, "a");
  EXPECT_EQ((*listing)[1].name, "b");

  ASSERT_TRUE(Await(*sim_, fs_->Unlink({0, 0}, "/dir/a")).ok());
  listing = Await(*sim_, fs_->ReadDir({3, 0}, "/dir"));
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 1u);
  EXPECT_EQ((*listing)[0].name, "b");

  EXPECT_EQ(Await(*sim_, fs_->Open({0, 0}, "/dir/a")).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(MemFsTest, UnlinkReclaimsStripes) {
  const std::uint64_t size = MiB(2);
  ASSERT_TRUE(WriteFile({0, 0}, "/gone", Bytes::Synthetic(size, 3), MiB(1)).ok());
  const auto used_before = storage_->total_memory_used();
  EXPECT_GE(used_before, size);
  ASSERT_TRUE(Await(*sim_, fs_->Unlink({1, 0}, "/gone")).ok());
  EXPECT_LT(storage_->total_memory_used(), used_before - size + 1024);
}

TEST_F(MemFsTest, NestedDirectories) {
  ASSERT_TRUE(Await(*sim_, fs_->Mkdir({0, 0}, "/a")).ok());
  ASSERT_TRUE(Await(*sim_, fs_->Mkdir({0, 0}, "/a/b")).ok());
  ASSERT_TRUE(WriteFile({0, 0}, "/a/b/c", Bytes::Copy("deep"), 10).ok());
  auto info = Await(*sim_, fs_->Stat({1, 0}, "/a/b"));
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->is_directory);
  auto root = Await(*sim_, fs_->ReadDir({1, 0}, "/"));
  ASSERT_TRUE(root.ok());
  ASSERT_EQ(root->size(), 1u);
  EXPECT_EQ((*root)[0].name, "a");
}

TEST_F(MemFsTest, MkdirExistingFails) {
  ASSERT_TRUE(Await(*sim_, fs_->Mkdir({0, 0}, "/d")).ok());
  EXPECT_EQ(Await(*sim_, fs_->Mkdir({0, 0}, "/d")).code(),
            ErrorCode::kExists);
}

TEST_F(MemFsTest, StatFile) {
  ASSERT_TRUE(WriteFile({0, 0}, "/f", Bytes::Synthetic(12345, 1), 12345).ok());
  auto info = Await(*sim_, fs_->Stat({2, 0}, "/f"));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->name, "f");
  EXPECT_EQ(info->size, 12345u);
  EXPECT_FALSE(info->is_directory);
  EXPECT_TRUE(info->sealed);
}

TEST_F(MemFsTest, InvalidPathsRejected) {
  EXPECT_EQ(Await(*sim_, fs_->Create({0, 0}, "relative")).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(Await(*sim_, fs_->Create({0, 0}, "/")).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(Await(*sim_, fs_->Mkdir({0, 0}, "/a//b")).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(MemFsTest, RmdirRemovesEmptyDirectory) {
  ASSERT_TRUE(Await(*sim_, fs_->Mkdir({0, 0}, "/rd")).ok());
  ASSERT_TRUE(Await(*sim_, fs_->Rmdir({1, 0}, "/rd")).ok());
  EXPECT_EQ(Await(*sim_, fs_->Stat({0, 0}, "/rd")).status().code(),
            ErrorCode::kNotFound);
  auto root = Await(*sim_, fs_->ReadDir({2, 0}, "/"));
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(root->empty());
}

TEST_F(MemFsTest, RmdirRejectsNonEmptyAndNonDirectories) {
  ASSERT_TRUE(Await(*sim_, fs_->Mkdir({0, 0}, "/full")).ok());
  ASSERT_TRUE(WriteFile({0, 0}, "/full/f", Bytes::Copy("x"), 10).ok());
  EXPECT_EQ(Await(*sim_, fs_->Rmdir({0, 0}, "/full")).code(),
            ErrorCode::kNotEmpty);
  EXPECT_EQ(Await(*sim_, fs_->Rmdir({0, 0}, "/full/f")).code(),
            ErrorCode::kNotDirectory);
  EXPECT_EQ(Await(*sim_, fs_->Rmdir({0, 0}, "/")).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(Await(*sim_, fs_->Rmdir({0, 0}, "/ghost")).code(),
            ErrorCode::kNotFound);
  // After emptying it, removal succeeds and the name can be reused.
  ASSERT_TRUE(Await(*sim_, fs_->Unlink({0, 0}, "/full/f")).ok());
  ASSERT_TRUE(Await(*sim_, fs_->Rmdir({0, 0}, "/full")).ok());
  EXPECT_TRUE(Await(*sim_, fs_->Mkdir({0, 0}, "/full")).ok());
}

TEST_F(MemFsTest, SequentialReadUsesPrefetch) {
  MemFsConfig config;
  Recreate(config);
  const std::uint64_t size = KiB(512) * 12;
  ASSERT_TRUE(WriteFile({0, 0}, "/seq", Bytes::Synthetic(size, 5), MiB(1)).ok());
  auto back = ReadFile({1, 0}, "/seq", KiB(64));
  ASSERT_TRUE(back.ok());
  const auto& stats = fs_->stats();
  EXPECT_GT(stats.prefetch_issued, 0u);
  EXPECT_GT(stats.cache_hits, stats.cache_misses);
}

TEST_F(MemFsTest, NoPrefetchWhenDisabled) {
  MemFsConfig config;
  config.prefetch_depth = 0;
  Recreate(config);
  const std::uint64_t size = KiB(512) * 4;
  ASSERT_TRUE(WriteFile({0, 0}, "/nopf", Bytes::Synthetic(size, 5), MiB(1)).ok());
  auto back = ReadFile({1, 0}, "/nopf", KiB(512));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), size);
  EXPECT_EQ(fs_->stats().prefetch_issued, 0u);
}

TEST_F(MemFsTest, SynchronousWritesWhenNoIoThreads) {
  MemFsConfig config;
  config.io_threads = 0;
  Recreate(config);
  const std::uint64_t size = KiB(512) * 3;
  const Bytes data = Bytes::Synthetic(size, 8);
  ASSERT_TRUE(WriteFile({0, 0}, "/sync", data, KiB(512)).ok());
  auto back = ReadFile({1, 0}, "/sync", MiB(1));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ContentEquals(data));
}

TEST_F(MemFsTest, BufferingSpeedsUpWrites) {
  // The Fig. 3b claim: asynchronous buffered flushing beats synchronous
  // stripe shipping.
  const std::uint64_t size = MiB(8);
  MemFsConfig buffered;
  buffered.io_threads = 8;
  Recreate(buffered);
  auto t0 = sim_->now();
  ASSERT_TRUE(WriteFile({0, 0}, "/wbuf", Bytes::Synthetic(size, 2), KiB(512)).ok());
  const auto buffered_time = sim_->now() - t0;

  MemFsConfig sync;
  sync.io_threads = 0;
  Recreate(sync);
  t0 = sim_->now();
  ASSERT_TRUE(WriteFile({0, 0}, "/wsync", Bytes::Synthetic(size, 2), KiB(512)).ok());
  const auto sync_time = sim_->now() - t0;

  EXPECT_LT(buffered_time, sync_time);
}

TEST_F(MemFsTest, PrefetchSpeedsUpSequentialReads) {
  const std::uint64_t size = MiB(8);
  MemFsConfig with_prefetch;
  Recreate(with_prefetch);
  ASSERT_TRUE(WriteFile({0, 0}, "/pf", Bytes::Synthetic(size, 2), MiB(1)).ok());
  auto t0 = sim_->now();
  ASSERT_TRUE(ReadFile({1, 0}, "/pf", KiB(64)).ok());
  const auto prefetch_time = sim_->now() - t0;

  MemFsConfig without;
  without.prefetch_depth = 0;
  Recreate(without);
  ASSERT_TRUE(WriteFile({0, 0}, "/pf", Bytes::Synthetic(size, 2), MiB(1)).ok());
  t0 = sim_->now();
  ASSERT_TRUE(ReadFile({1, 0}, "/pf", KiB(64)).ok());
  const auto cold_time = sim_->now() - t0;

  EXPECT_LT(prefetch_time, cold_time);
}

TEST_F(MemFsTest, KetamaDistributionWorksEndToEnd) {
  MemFsConfig config;
  config.use_ketama = true;
  Recreate(config);
  const Bytes data = Bytes::Synthetic(MiB(3), 4);
  ASSERT_TRUE(WriteFile({0, 0}, "/ketama", data, MiB(1)).ok());
  auto back = ReadFile({2, 0}, "/ketama", MiB(1));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ContentEquals(data));
}

TEST_F(MemFsTest, StatsAccumulate) {
  ASSERT_TRUE(WriteFile({0, 0}, "/s1", Bytes::Synthetic(MiB(1), 1), MiB(1)).ok());
  ASSERT_TRUE(ReadFile({1, 0}, "/s1", MiB(1)).ok());
  const auto& stats = fs_->stats();
  EXPECT_EQ(stats.files_created, 1u);
  EXPECT_EQ(stats.files_opened, 1u);
  EXPECT_EQ(stats.bytes_written, MiB(1));
  EXPECT_EQ(stats.bytes_read, MiB(1));
  EXPECT_EQ(stats.stripe_sets, 2u);
  EXPECT_GE(stats.stripe_gets, 2u);
}

TEST_F(MemFsTest, ManyConcurrentWritersAndReaders) {
  // Stress: all nodes write distinct files concurrently, then everyone reads
  // everyone's file.
  std::vector<sim::Future<Result<FileHandle>>> creates;
  constexpr int kFiles = 12;
  std::vector<Bytes> contents;
  for (int f = 0; f < kFiles; ++f) {
    contents.push_back(Bytes::Synthetic(KiB(700) + f * 1000, f));
  }
  // Writers run truly concurrently through the event loop.
  std::vector<Status> results(kFiles, Status::Ok());
  for (int f = 0; f < kFiles; ++f) {
    const VfsContext ctx{static_cast<net::NodeId>(f % kNodes),
                         static_cast<std::uint32_t>(f / kNodes)};
    [](MemFs& fs, sim::Simulation&, VfsContext c, std::string path,
       Bytes data, Status& out) -> sim::Task {
      auto created = co_await fs.Create(c, path);
      if (!created.ok()) {
        out = created.status();
        co_return;
      }
      Status s = co_await fs.Write(c, created.value(), std::move(data));
      if (!s.ok()) {
        out = s;
        co_return;
      }
      out = co_await fs.Close(c, created.value());
    }(*fs_, *sim_, ctx, "/c" + std::to_string(f), contents[f], results[f]);
  }
  sim_->Run();
  for (const auto& r : results) EXPECT_TRUE(r.ok());

  for (int f = 0; f < kFiles; ++f) {
    auto back = ReadFile({static_cast<net::NodeId>((f + 1) % kNodes), 0},
                         "/c" + std::to_string(f), KiB(256));
    ASSERT_TRUE(back.ok()) << f;
    EXPECT_TRUE(back->ContentEquals(contents[f])) << f;
  }
}

}  // namespace
}  // namespace memfs::fs
