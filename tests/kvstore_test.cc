// Tests for the Memcached stand-in: server state machine semantics, memory
// accounting, and the simulated cluster protocol binding.
#include <gtest/gtest.h>

#include "common/units.h"
#include "kvstore/kv_cluster.h"
#include "kvstore/kv_server.h"
#include "net/fluid_network.h"
#include "test_util.h"

namespace memfs::kv {
namespace {

using memfs::testing::Await;

// --- KvServer state machine ---

TEST(KvServerTest, SetGetRoundTrip) {
  KvServer server;
  EXPECT_TRUE(server.Set("k", Bytes::Copy("value")).ok());
  auto got = server.Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->view(), "value");
}

TEST(KvServerTest, GetMissingIsNotFound) {
  KvServer server;
  EXPECT_EQ(server.Get("nope").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(server.stats().misses, 1u);
}

TEST(KvServerTest, SetOverwrites) {
  KvServer server;
  ASSERT_TRUE(server.Set("k", Bytes::Copy("one")).ok());
  ASSERT_TRUE(server.Set("k", Bytes::Copy("twotwo")).ok());
  EXPECT_EQ(server.Get("k")->view(), "twotwo");
  EXPECT_EQ(server.memory_used(), 6u);
  EXPECT_EQ(server.object_count(), 1u);
}

TEST(KvServerTest, AddFailsOnExisting) {
  KvServer server;
  ASSERT_TRUE(server.Add("k", Bytes::Copy("one")).ok());
  EXPECT_EQ(server.Add("k", Bytes::Copy("two")).code(), ErrorCode::kExists);
  EXPECT_EQ(server.Get("k")->view(), "one");
}

TEST(KvServerTest, AppendRequiresExistingKey) {
  KvServer server;
  EXPECT_EQ(server.Append("k", Bytes::Copy("x")).code(),
            ErrorCode::kNotFound);
  ASSERT_TRUE(server.Set("k", Bytes::Copy("ab")).ok());
  ASSERT_TRUE(server.Append("k", Bytes::Copy("cd")).ok());
  EXPECT_EQ(server.Get("k")->view(), "abcd");
  EXPECT_EQ(server.memory_used(), 4u);
}

TEST(KvServerTest, DeleteReclaimsMemory) {
  KvServer server;
  ASSERT_TRUE(server.Set("k", Bytes::Copy("12345")).ok());
  EXPECT_EQ(server.memory_used(), 5u);
  ASSERT_TRUE(server.Delete("k").ok());
  EXPECT_EQ(server.memory_used(), 0u);
  EXPECT_EQ(server.Delete("k").code(), ErrorCode::kNotFound);
}

TEST(KvServerTest, ObjectSizeLimitEnforced) {
  KvServerConfig config;
  config.max_object_size = 100;
  KvServer server(config);
  EXPECT_EQ(server.Set("big", Bytes::Synthetic(101, 1)).code(),
            ErrorCode::kTooLarge);
  EXPECT_TRUE(server.Set("ok", Bytes::Synthetic(100, 1)).ok());
  // Appends may not grow past the limit either.
  EXPECT_EQ(server.Append("ok", Bytes::Synthetic(1, 2)).code(),
            ErrorCode::kTooLarge);
}

TEST(KvServerTest, MemoryLimitEnforced) {
  KvServerConfig config;
  config.memory_limit = 1000;
  config.max_object_size = 1000;
  KvServer server(config);
  EXPECT_TRUE(server.Set("a", Bytes::Synthetic(600, 1)).ok());
  EXPECT_EQ(server.Set("b", Bytes::Synthetic(500, 2)).code(),
            ErrorCode::kNoSpace);
  // Overwriting accounts for the replaced object.
  EXPECT_TRUE(server.Set("a", Bytes::Synthetic(900, 3)).ok());
  EXPECT_EQ(server.memory_used(), 900u);
}

TEST(KvServerTest, SyntheticPayloadsCountLogicalSize) {
  KvServer server;
  ASSERT_TRUE(server.Set("big", Bytes::Synthetic(units::MiB(64), 7)).ok());
  EXPECT_EQ(server.memory_used(), units::MiB(64));
}

TEST(KvServerTest, ClearDropsEverything) {
  KvServer server;
  ASSERT_TRUE(server.Set("a", Bytes::Copy("x")).ok());
  ASSERT_TRUE(server.Set("b", Bytes::Copy("y")).ok());
  server.Clear();
  EXPECT_EQ(server.object_count(), 0u);
  EXPECT_EQ(server.memory_used(), 0u);
  EXPECT_FALSE(server.Exists("a"));
}

TEST(KvServerTest, StatsCountOperations) {
  KvServer server;
  (void)server.Set("a", Bytes::Copy("1"));
  (void)server.Get("a");
  (void)server.Get("b");
  (void)server.Append("a", Bytes::Copy("2"));
  (void)server.Delete("a");
  const auto& stats = server.stats();
  EXPECT_EQ(stats.sets, 1u);
  EXPECT_EQ(stats.gets, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.appends, 1u);
  EXPECT_EQ(stats.deletes, 1u);
}

// --- KvCluster protocol over the simulated network ---

class KvClusterTest : public ::testing::Test {
 protected:
  KvClusterTest()
      : network_(sim_, net::Das4Ipoib(4)),
        cluster_(sim_, network_, {0, 1, 2, 3}) {}

  sim::Simulation sim_;
  net::FairShareNetwork network_;
  KvCluster cluster_;
};

TEST_F(KvClusterTest, RemoteSetGetRoundTrip) {
  Status set = Await(sim_, cluster_.Set(0, 2, "key", Bytes::Copy("payload")));
  EXPECT_TRUE(set.ok());
  auto got = Await(sim_, cluster_.Get(3, 2, "key"));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->view(), "payload");
  EXPECT_GT(sim_.now(), 0u);
}

TEST_F(KvClusterTest, OperationsTakeSimulatedTime) {
  const auto t0 = sim_.now();
  (void)Await(sim_, cluster_.Set(0, 1, "k", Bytes::Synthetic(units::MiB(1), 5)));
  const auto elapsed = sim_.now() - t0;
  // 1 MB at 1 GB/s is 1 ms; plus latency and service time.
  EXPECT_GT(elapsed, units::Millis(1));
  EXPECT_LT(elapsed, units::Millis(3));
}

TEST_F(KvClusterTest, LocalOpsFasterThanRemote) {
  (void)Await(sim_, cluster_.Set(0, 0, "local", Bytes::Synthetic(1024, 1)));
  (void)Await(sim_, cluster_.Set(0, 1, "remote", Bytes::Synthetic(1024, 1)));

  auto time_get = [&](net::NodeId client, std::uint32_t server,
                      const std::string& key) {
    const auto t0 = sim_.now();
    auto result = Await(sim_, cluster_.Get(client, server, key));
    EXPECT_TRUE(result.ok());
    return sim_.now() - t0;
  };
  const auto local = time_get(0, 0, "local");
  const auto remote = time_get(0, 1, "remote");
  EXPECT_LT(local, remote);
}

TEST_F(KvClusterTest, AddAndAppendSemanticsOverNetwork) {
  EXPECT_TRUE(Await(sim_, cluster_.Add(0, 1, "k", Bytes::Copy("v1"))).ok());
  EXPECT_EQ(Await(sim_, cluster_.Add(0, 1, "k", Bytes::Copy("v2"))).code(),
            ErrorCode::kExists);
  EXPECT_TRUE(Await(sim_, cluster_.Append(2, 1, "k", Bytes::Copy("+"))).ok());
  auto got = Await(sim_, cluster_.Get(3, 1, "k"));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->view(), "v1+");
}

TEST_F(KvClusterTest, DeleteOverNetwork) {
  (void)Await(sim_, cluster_.Set(0, 3, "k", Bytes::Copy("x")));
  EXPECT_TRUE(Await(sim_, cluster_.Delete(1, 3, "k")).ok());
  EXPECT_EQ(Await(sim_, cluster_.Get(2, 3, "k")).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(KvClusterTest, ConcurrentAppendsAllLand) {
  (void)Await(sim_, cluster_.Set(0, 0, "log", Bytes::Copy("")));
  std::vector<sim::Future<Status>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(
        cluster_.Append(i % 4, 0, "log", Bytes::Copy("x")));
  }
  sim_.Run();
  for (auto& f : futures) EXPECT_TRUE(f.value().ok());
  auto got = Await(sim_, cluster_.Get(0, 0, "log"));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 10u);
}

TEST_F(KvClusterTest, WorkerLimitSerializesLoad) {
  // More concurrent ops than workers; all must still complete.
  std::vector<sim::Future<Status>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(cluster_.Set(i % 4, 1, "k" + std::to_string(i),
                                   Bytes::Synthetic(2048, i)));
  }
  sim_.Run();
  for (auto& f : futures) EXPECT_TRUE(f.value().ok());
  EXPECT_EQ(cluster_.server(1).object_count(), 64u);
}

TEST_F(KvClusterTest, TotalMemoryAggregates) {
  (void)Await(sim_, cluster_.Set(0, 0, "a", Bytes::Synthetic(100, 1)));
  (void)Await(sim_, cluster_.Set(0, 1, "b", Bytes::Synthetic(200, 2)));
  EXPECT_EQ(cluster_.total_memory_used(), 300u);
}

// --- Per-server memory accounting through the monitor gauges ---
//
// With a registry attached the cluster mirrors each server's memory and
// object count into "kv.mem_bytes/<n>" / "kv.objects/<n>" gauges on every
// committed mutation, so the time-series monitor samples accounting that is
// always consistent with KvServer::memory_used().

class KvGaugeTest : public ::testing::Test {
 protected:
  KvGaugeTest()
      : network_(sim_, net::Das4Ipoib(4)),
        cluster_(sim_, network_, {0, 1, 2, 3}, KvServerConfig{},
                 KvOpCostModel{}, &metrics_) {}

  std::int64_t MemGauge(std::uint32_t server) const {
    return metrics_.GaugeValue(InstanceGaugeName("kv.mem_bytes", server));
  }
  std::int64_t ObjectsGauge(std::uint32_t server) const {
    return metrics_.GaugeValue(InstanceGaugeName("kv.objects", server));
  }

  sim::Simulation sim_;
  MetricsRegistry metrics_;
  net::FairShareNetwork network_;
  KvCluster cluster_;
};

TEST_F(KvGaugeTest, SetUpdatesMemoryAndObjectGauges) {
  ASSERT_TRUE(Await(sim_, cluster_.Set(0, 1, "k", Bytes::Synthetic(100, 1)))
                  .ok());
  EXPECT_EQ(MemGauge(1), 100);
  EXPECT_EQ(ObjectsGauge(1), 1);
  EXPECT_EQ(MemGauge(1),
            static_cast<std::int64_t>(cluster_.server(1).memory_used()));
  // Overwriting replaces, not adds.
  ASSERT_TRUE(Await(sim_, cluster_.Set(0, 1, "k", Bytes::Synthetic(40, 2)))
                  .ok());
  EXPECT_EQ(MemGauge(1), 40);
  EXPECT_EQ(ObjectsGauge(1), 1);
}

TEST_F(KvGaugeTest, AppendGrowthTracked) {
  ASSERT_TRUE(Await(sim_, cluster_.Set(0, 2, "log", Bytes::Synthetic(10, 1)))
                  .ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        Await(sim_, cluster_.Append(0, 2, "log", Bytes::Synthetic(7, i)))
            .ok());
    EXPECT_EQ(MemGauge(2), 10 + 7 * (i + 1));
  }
  EXPECT_EQ(MemGauge(2),
            static_cast<std::int64_t>(cluster_.server(2).memory_used()));
  EXPECT_EQ(ObjectsGauge(2), 1);
}

TEST_F(KvGaugeTest, DeleteReclaimsGaugedMemory) {
  ASSERT_TRUE(Await(sim_, cluster_.Set(0, 0, "a", Bytes::Synthetic(64, 1)))
                  .ok());
  ASSERT_TRUE(Await(sim_, cluster_.Set(0, 0, "b", Bytes::Synthetic(36, 2)))
                  .ok());
  EXPECT_EQ(MemGauge(0), 100);
  EXPECT_EQ(ObjectsGauge(0), 2);
  ASSERT_TRUE(Await(sim_, cluster_.Delete(0, 0, "a")).ok());
  EXPECT_EQ(MemGauge(0), 36);
  EXPECT_EQ(ObjectsGauge(0), 1);
  ASSERT_TRUE(Await(sim_, cluster_.Delete(0, 0, "b")).ok());
  EXPECT_EQ(MemGauge(0), 0);
  EXPECT_EQ(ObjectsGauge(0), 0);
}

TEST_F(KvGaugeTest, WipeOnRestartZeroesGauges) {
  ASSERT_TRUE(Await(sim_, cluster_.Set(0, 3, "k", Bytes::Synthetic(128, 1)))
                  .ok());
  EXPECT_EQ(MemGauge(3), 128);
  cluster_.SetServerDown(3, true, /*wipe_on_restart=*/true);
  // Still down: the stored bytes are only discarded at restart.
  cluster_.SetServerDown(3, false, /*wipe_on_restart=*/true);
  EXPECT_EQ(MemGauge(3), 0);
  EXPECT_EQ(ObjectsGauge(3), 0);
  EXPECT_EQ(cluster_.server(3).memory_used(), 0u);
}

TEST_F(KvGaugeTest, BatchedMutationsSyncGauges) {
  std::vector<BatchItem> items;
  for (int i = 0; i < 4; ++i) {
    items.push_back(BatchItem{"k" + std::to_string(i),
                              Bytes::Synthetic(25, static_cast<unsigned>(i))});
  }
  auto results =
      Await(sim_, cluster_.Batch(0, 1, BatchKind::kSet, std::move(items)));
  for (const auto& r : results) EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(MemGauge(1), 100);
  EXPECT_EQ(ObjectsGauge(1), 4);
}

}  // namespace
}  // namespace memfs::kv
