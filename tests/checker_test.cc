// SimChecker unit tests: synthetic deadlocks (lost wakeups), semaphore
// double-release, leaked coroutine frames, and EventDigest equality across
// identical runs / inequality across differing ones.
//
// Each fixture deliberately breaks one invariant, asserts the checker names
// the right rule and primitive, then unsticks the coroutine so the test
// process stays leak-free under ASan.
#include <gtest/gtest.h>

#include <coroutine>
#include <cstdint>

#include "common/units.h"
#include "sim/checker.h"
#include "sim/future.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace memfs {
namespace {

sim::Task AcquireOnce(sim::Semaphore& sem, bool& resumed) {
  // lint: allow(acquire-release) deliberately unbalanced: the tests below
  co_await sem.Acquire();  // assert the checker reports this leak
  resumed = true;
}

sim::Task WaitOnGroup(sim::WaitGroup& wg, bool& resumed) {
  co_await wg.Wait();
  resumed = true;
}

sim::Task AwaitFuture(sim::Future<int> future, int& value) {
  value = co_await future;
}

sim::Task BalancedHold(sim::Simulation& sim, sim::Semaphore& sem,
                       bool& resumed) {
  co_await sem.Acquire();
  co_await sim.Delay(units::Micros(1));
  sem.Release();
  resumed = true;
}

// Parks the coroutine on an awaitable the checker does not instrument; the
// handle lands in `slot` so the test can destroy the frame afterwards.
struct Park {
  std::coroutine_handle<>* slot;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const { *slot = h; }
  void await_resume() const noexcept {}
};

sim::Task ParkForever(std::coroutine_handle<>& slot) { co_await Park{&slot}; }

TEST(SimCheckerTest, CleanRunHasNoFindings) {
  sim::Simulation sim;
  sim::SimChecker checker(sim);
  sim::Semaphore sem(sim, 1, "clean-permits");
  bool first = false;
  bool second = false;
  BalancedHold(sim, sem, first);
  BalancedHold(sim, sem, second);  // queues behind the first holder
  sim.Run();

  EXPECT_TRUE(first);
  EXPECT_TRUE(second);
  EXPECT_TRUE(checker.Finish().empty()) << checker.Summary();
  EXPECT_TRUE(checker.clean());
  EXPECT_EQ(checker.waiting(), 0u);
  EXPECT_EQ(checker.live_tasks(), 0u);
}

// The acceptance fixture: a deliberately broken program whose wakeup never
// arrives. The queue drains with the waiter still parked and the checker
// names the semaphore it is stuck on.
TEST(SimCheckerTest, LostWakeupNamesTheSemaphore) {
  sim::Simulation sim;
  sim::SimChecker checker(sim);
  sim::Semaphore sem(sim, 0, "broken-fixture");
  bool resumed = false;
  AcquireOnce(sem, resumed);
  sim.Run();  // drains immediately; the acquirer is never released

  EXPECT_FALSE(resumed);
  EXPECT_EQ(checker.waiting(), 1u);
  ASSERT_FALSE(checker.findings().empty());
  EXPECT_EQ(checker.findings()[0].rule, "lost-wakeup");
  EXPECT_NE(checker.findings()[0].detail.find("Semaphore"), std::string::npos);
  EXPECT_NE(checker.findings()[0].detail.find("broken-fixture"),
            std::string::npos);

  // Unstick the coroutine so its frame is reclaimed. This Release has no
  // matching Acquire, so it is itself reported — which doubles as coverage
  // for over-release through the handoff path.
  sem.Release();
  sim.Run();
  EXPECT_TRUE(resumed);
  checker.Finish();
  ASSERT_EQ(checker.findings().size(), 2u);
  EXPECT_EQ(checker.findings()[1].rule, "semaphore-over-release");
  EXPECT_EQ(checker.waiting(), 0u);
  EXPECT_EQ(checker.live_tasks(), 0u);
}

TEST(SimCheckerTest, LostWakeupNamesTheWaitGroup) {
  sim::Simulation sim;
  sim::SimChecker checker(sim);
  sim::WaitGroup wg(sim, "stage-join");
  wg.Add(1);
  bool resumed = false;
  WaitOnGroup(wg, resumed);
  sim.Run();  // Done() never called

  ASSERT_EQ(checker.findings().size(), 1u);
  EXPECT_EQ(checker.findings()[0].rule, "lost-wakeup");
  EXPECT_NE(checker.findings()[0].detail.find("WaitGroup"), std::string::npos);
  EXPECT_NE(checker.findings()[0].detail.find("stage-join"),
            std::string::npos);

  wg.Done();
  sim.Run();
  EXPECT_TRUE(resumed);
  EXPECT_TRUE(checker.Finish().size() == 1u) << checker.Summary();
  EXPECT_EQ(checker.live_tasks(), 0u);
}

TEST(SimCheckerTest, LostWakeupOnAnUnfulfilledFuture) {
  sim::Simulation sim;
  sim::SimChecker checker(sim);
  sim::Promise<int> promise(sim);
  int value = 0;
  AwaitFuture(promise.GetFuture(), value);
  sim.Run();

  ASSERT_EQ(checker.findings().size(), 1u);
  EXPECT_EQ(checker.findings()[0].rule, "lost-wakeup");
  EXPECT_NE(checker.findings()[0].detail.find("Future"), std::string::npos);

  promise.Set(42);
  sim.Run();
  EXPECT_EQ(value, 42);
  checker.Finish();
  EXPECT_EQ(checker.findings().size(), 1u);
  EXPECT_EQ(checker.live_tasks(), 0u);
}

TEST(SimCheckerTest, DoubleReleaseIsFlaggedImmediately) {
  sim::Simulation sim;
  sim::SimChecker checker(sim);
  sim::Semaphore sem(sim, 1, "over-released");
  ASSERT_TRUE(sem.TryAcquire());
  sem.Release();  // balanced
  EXPECT_TRUE(checker.clean());
  sem.Release();  // no permit outstanding

  ASSERT_EQ(checker.findings().size(), 1u);
  EXPECT_EQ(checker.findings()[0].rule, "semaphore-over-release");
  EXPECT_NE(checker.findings()[0].detail.find("over-released"),
            std::string::npos);
}

TEST(SimCheckerTest, LeakedTaskReportedAtFinish) {
  sim::Simulation sim;
  sim::SimChecker checker(sim);
  std::coroutine_handle<> parked;
  ParkForever(parked);
  sim.Run();

  // Parked on an uninstrumented awaitable: not in the wait-for registry, so
  // it is not a lost wakeup — it is a leaked frame.
  EXPECT_EQ(checker.waiting(), 0u);
  EXPECT_EQ(checker.live_tasks(), 1u);
  const auto& findings = checker.Finish();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "leaked-task");

  ASSERT_TRUE(parked);
  parked.destroy();  // reclaim the frame; the checker observes the teardown
  EXPECT_EQ(checker.live_tasks(), 0u);
}

sim::Task DelayTwice(sim::Simulation& sim, std::uint64_t first,
                     std::uint64_t second) {
  co_await sim.Delay(first);
  co_await sim.Delay(second);
}

std::uint64_t DigestOf(std::uint64_t spread) {
  sim::Simulation sim;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    DelayTwice(sim, i * spread, spread);
  }
  sim.Run();
  return sim.EventDigest();
}

TEST(EventDigestTest, IdenticalRunsProduceIdenticalDigests) {
  EXPECT_EQ(DigestOf(units::Micros(100)), DigestOf(units::Micros(100)));
}

TEST(EventDigestTest, DifferentSchedulesProduceDifferentDigests) {
  EXPECT_NE(DigestOf(units::Micros(100)), DigestOf(units::Micros(200)));
}

TEST(EventDigestTest, DigestCoversEveryProcessedEvent) {
  sim::Simulation sim;
  const std::uint64_t before = sim.EventDigest();
  DelayTwice(sim, units::Micros(5), units::Micros(5));
  sim.Run();
  EXPECT_NE(sim.EventDigest(), before);
  EXPECT_GT(sim.events_processed(), 0u);
}

// --- Coroutine-frame recycler (ISSUE 9) ---
//
// Task promise frames now come from the size-class recycling pool
// (sim/pool_alloc.h): a finished frame's memory is immediately handed to the
// next same-sized frame. The checker tracks frames by address, so recycling
// is exactly the aliasing scenario that could mask leaks or double-frees —
// these tests pin that detection still fires.

TEST(SimCheckerRecyclerTest, RecycledFramesStayBalanced) {
  sim::Simulation sim;
  sim::SimChecker checker(sim);
  sim::Semaphore sem(sim, 2, "churn-permits");
  // Sequential waves: every wave's frames are freed before the next wave
  // allocates, so (without sanitizer bypass) later waves run entirely on
  // recycled frames — live-task accounting must stay exact through reuse.
  for (int wave = 0; wave < 50; ++wave) {
    bool a = false;
    bool b = false;
    BalancedHold(sim, sem, a);
    BalancedHold(sim, sem, b);
    sim.Run();
    EXPECT_TRUE(a);
    EXPECT_TRUE(b);
    EXPECT_EQ(checker.live_tasks(), 0u) << "wave " << wave;
  }
  EXPECT_TRUE(checker.Finish().empty()) << checker.Summary();
}

TEST(SimCheckerRecyclerTest, LeakDetectionSurvivesFrameReuse) {
  sim::Simulation sim;
  sim::SimChecker checker(sim);
  // Churn frames through the pool first, so the leaked frame below occupies
  // recycled memory whose previous tenant was properly destroyed — a stale
  // address-keyed entry would make this report a false double or nothing.
  sim::Semaphore sem(sim, 1, "warmup-permits");
  for (int i = 0; i < 20; ++i) {
    bool done = false;
    BalancedHold(sim, sem, done);
    sim.Run();
    ASSERT_TRUE(done);
  }
  EXPECT_EQ(checker.live_tasks(), 0u);

  std::coroutine_handle<> parked;
  ParkForever(parked);
  sim.Run();
  EXPECT_EQ(checker.live_tasks(), 1u);
  checker.Finish();
  ASSERT_FALSE(checker.findings().empty());
  EXPECT_EQ(checker.findings()[0].rule, "leaked-task");

  parked.destroy();  // reclaim the deliberately parked frame
  EXPECT_EQ(checker.live_tasks(), 0u);
}

}  // namespace
}  // namespace memfs
