// Tests for the flag parser and the Chrome-trace recorder.
#include <sstream>

#include <gtest/gtest.h>

#include "common/flags.h"
#include "mtc/runner.h"
#include "mtc/scheduler.h"
#include "sim/trace.h"
#include "workloads/montage.h"
#include "workloads/testbed.h"

namespace memfs {
namespace {

// --- FlagParser ---

FlagParser Parse(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  std::vector<char*> argv;
  for (auto& arg : storage) argv.push_back(arg.data());
  return FlagParser(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagParserTest, EqualsForm) {
  auto flags = Parse({"--nodes=16", "--fs=amfs"});
  EXPECT_EQ(flags.GetUint("nodes", 1), 16u);
  EXPECT_EQ(flags.GetString("fs", "memfs"), "amfs");
}

TEST(FlagParserTest, SpaceForm) {
  auto flags = Parse({"--nodes", "32", "--fs", "diskpfs"});
  EXPECT_EQ(flags.GetUint("nodes", 1), 32u);
  EXPECT_EQ(flags.GetString("fs", ""), "diskpfs");
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  auto flags = Parse({});
  EXPECT_EQ(flags.GetUint("nodes", 7), 7u);
  EXPECT_EQ(flags.GetString("fs", "memfs"), "memfs");
  EXPECT_FALSE(flags.GetBool("csv"));
  EXPECT_DOUBLE_EQ(flags.GetDouble("x", 2.5), 2.5);
}

TEST(FlagParserTest, BareSwitchIsTrue) {
  auto flags = Parse({"--csv", "--ketama"});
  EXPECT_TRUE(flags.GetBool("csv"));
  EXPECT_TRUE(flags.GetBool("ketama"));
}

TEST(FlagParserTest, BooleanValues) {
  auto flags = Parse({"--a=true", "--b=0", "--c=yes", "--d=off"});
  EXPECT_TRUE(flags.GetBool("a"));
  EXPECT_FALSE(flags.GetBool("b"));
  EXPECT_TRUE(flags.GetBool("c"));
  EXPECT_FALSE(flags.GetBool("d"));
}

TEST(FlagParserTest, MalformedNumbersFallBack) {
  auto flags = Parse({"--nodes=abc", "--rate=1.5x"});
  EXPECT_EQ(flags.GetUint("nodes", 9), 9u);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 3.0), 3.0);
}

TEST(FlagParserTest, PositionalArguments) {
  auto flags = Parse({"run", "--nodes=4", "fast"});
  // "fast" follows a flag with a value already attached via '='.
  EXPECT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "run");
  EXPECT_EQ(flags.positional()[1], "fast");
}

TEST(FlagParserTest, UnknownFlagsDetected) {
  auto flags = Parse({"--nodes=4", "--typo=1"});
  (void)flags.GetUint("nodes", 1);
  const auto unknown = flags.UnknownFlags();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(FlagParserTest, DoubleParsing) {
  auto flags = Parse({"--rate=2.75"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0.0), 2.75);
}

// --- TraceRecorder ---

TEST(TraceRecorderTest, SpansAndJsonStructure) {
  sim::TraceRecorder trace;
  trace.NameProcess(0, "node 0");
  trace.AddSpan("taskA", "stage1", 1000, 5000, 0, 2);
  trace.AddSpan("taskB", "stage2", 2000, 3000, 1, 0);
  trace.AddInstant("server down", "fault", 2500, 1);

  EXPECT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.instants().size(), 1u);
  EXPECT_EQ(trace.spans()[0].name, "taskA");
  EXPECT_EQ(trace.spans()[0].end, 5000u);

  std::ostringstream os;
  trace.WriteJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"taskA\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  // Duration of taskA: 4000 ns = 4 us.
  EXPECT_NE(json.find("\"dur\":4"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TraceRecorderTest, EscapesSpecialCharacters) {
  sim::TraceRecorder trace;
  trace.AddSpan("name\"with\\quote", "cat", 0, 1, 0, 0);
  std::ostringstream os;
  trace.WriteJson(os);
  EXPECT_NE(os.str().find("name\\\"with\\\\quote"), std::string::npos);
}

TEST(TraceRecorderTest, NegativeDurationClamped) {
  sim::TraceRecorder trace;
  trace.AddSpan("odd", "cat", 100, 50, 0, 0);  // end < start
  EXPECT_EQ(trace.spans()[0].end, 100u);
}

TEST(TraceRecorderTest, WorkflowRunProducesOneSpanPerTask) {
  sim::TraceRecorder trace;
  workloads::TestbedConfig config;
  config.nodes = 4;
  workloads::Testbed bed(workloads::FsKind::kMemFs, config);

  workloads::MontageParams params;
  params.degree = 6;
  params.task_scale = 64;
  params.size_scale = 16;
  params.project_cpu_s = 0.5;
  const auto workflow = workloads::BuildMontage(params);

  mtc::UniformScheduler scheduler;
  mtc::RunnerConfig runner_config;
  runner_config.nodes = 4;
  runner_config.cores_per_node = 2;
  runner_config.trace = &trace;
  mtc::Runner runner(bed.simulation(), bed.vfs(), scheduler, runner_config);
  const auto result = runner.Run(workflow);
  ASSERT_TRUE(result.status.ok());

  EXPECT_EQ(trace.spans().size(), workflow.tasks.size());
  for (const auto& span : trace.spans()) {
    EXPECT_LT(span.pid, 4u);
    EXPECT_LT(span.tid, 2u);
    EXPECT_LE(span.start, span.end);
  }
}

}  // namespace
}  // namespace memfs
